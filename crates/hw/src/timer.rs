//! Per-CPU one-shot timer slots.
//!
//! Each CPU has exactly one APIC one-shot countdown pending at a time, and
//! the scheduler re-arms it on every scheduler exit (tickless operation,
//! §3.3). Funneling those programmings through the global future-event heap
//! made every re-arm an O(log n) insert plus a tombstone for the cancelled
//! predecessor — and on a 256-CPU Phi the heap was mostly timers.
//!
//! [`TimerSlots`] stores the single pending deadline per CPU in a flat
//! array instead: re-arming is a store, disarming is a store, and the next
//! timer to fire is read in O(1) from a cached earliest-slot index. The
//! index is updated in O(1) when an arm improves on the cached earliest and
//! by an O(n_cpus) rescan only when the current earliest is demoted or
//! cleared — amortized, one scan per firing, exactly what popping a heap of
//! n_cpus timers would cost, without the per-re-arm churn.

use nautix_des::Cycles;

/// An unarmed slot. `Cycles::MAX` is unreachable as a real deadline: the
/// simulation asserts against time overflow long before.
const UNARMED: Cycles = Cycles::MAX;

/// One pending one-shot deadline per CPU, with an O(1) earliest read.
#[derive(Debug, Clone)]
pub struct TimerSlots {
    /// Absolute fire time per CPU; `UNARMED` when the slot is empty.
    deadlines: Vec<Cycles>,
    /// Index of a slot holding the minimum deadline (any slot when none are
    /// armed). Invariant: `deadlines[earliest] == min(deadlines)`.
    earliest: usize,
    /// Total arms, for diagnostics (matches the old APIC programmings
    /// counter, summed over CPUs).
    arms: u64,
}

impl TimerSlots {
    /// `n` unarmed slots.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        TimerSlots {
            deadlines: vec![UNARMED; n],
            earliest: 0,
            arms: 0,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.deadlines.len()
    }

    /// Return to `n` unarmed slots, reusing the backing storage.
    pub fn reset(&mut self, n: usize) {
        assert!(n >= 1);
        self.deadlines.clear();
        self.deadlines.resize(n, UNARMED);
        self.earliest = 0;
        self.arms = 0;
    }

    /// True when no slot is armed.
    pub fn is_empty(&self) -> bool {
        self.deadlines[self.earliest] == UNARMED
    }

    /// Arm (or re-arm) `cpu`'s one-shot to fire at absolute time `deadline`.
    /// The previous programming, if any, is simply overwritten — one slot
    /// per CPU means re-arm storms cannot grow any state.
    pub fn arm(&mut self, cpu: usize, deadline: Cycles) {
        assert!(deadline < UNARMED, "timer deadline overflow");
        self.arms += 1;
        let was_earliest = cpu == self.earliest;
        let improves = deadline <= self.deadlines[self.earliest];
        self.deadlines[cpu] = deadline;
        if improves {
            self.earliest = cpu;
        } else if was_earliest {
            // The earliest slot moved later; another slot may now be first.
            self.rescan();
        }
    }

    /// Disarm `cpu`'s one-shot, if armed.
    pub fn disarm(&mut self, cpu: usize) {
        self.deadlines[cpu] = UNARMED;
        if cpu == self.earliest {
            self.rescan();
        }
    }

    /// `cpu`'s pending deadline, if armed.
    pub fn deadline(&self, cpu: usize) -> Option<Cycles> {
        match self.deadlines[cpu] {
            UNARMED => None,
            d => Some(d),
        }
    }

    /// The next timer to fire: `(cpu, deadline)`, in O(1).
    ///
    /// Ties are deterministic: among equal deadlines the slot most recently
    /// promoted by [`arm`](Self::arm) (or the lowest index after a rescan)
    /// is reported, and the firing order of simultaneous timers follows
    /// from the deterministic sequence of arm/disarm calls.
    pub fn earliest(&self) -> Option<(usize, Cycles)> {
        match self.deadlines[self.earliest] {
            UNARMED => None,
            d => Some((self.earliest, d)),
        }
    }

    /// The earliest timer, but only if it is due no later than `head` —
    /// the timestamp-order merge condition between the timer slots and the
    /// future-event queue. `head == None` means the queue is empty, so any
    /// armed timer is due. Equality fires the timer first: hardware raises
    /// the interrupt line before any same-instant software-visible event.
    pub fn due_before(&self, head: Option<Cycles>) -> Option<(usize, Cycles)> {
        let (cpu, deadline) = self.earliest()?;
        match head {
            Some(h) if deadline > h => None,
            _ => Some((cpu, deadline)),
        }
    }

    /// Total arm operations performed.
    pub fn arms(&self) -> u64 {
        self.arms
    }

    fn rescan(&mut self) {
        let mut best = 0;
        for (i, &d) in self.deadlines.iter().enumerate() {
            if d < self.deadlines[best] {
                best = i;
            }
        }
        self.earliest = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unarmed() {
        let t = TimerSlots::new(4);
        assert!(t.is_empty());
        assert_eq!(t.earliest(), None);
        assert_eq!(t.deadline(2), None);
    }

    #[test]
    fn earliest_tracks_min_across_arms() {
        let mut t = TimerSlots::new(4);
        t.arm(1, 500);
        assert_eq!(t.earliest(), Some((1, 500)));
        t.arm(3, 200);
        assert_eq!(t.earliest(), Some((3, 200)));
        t.arm(0, 900);
        assert_eq!(t.earliest(), Some((3, 200)));
    }

    #[test]
    fn rearm_later_demotes_and_rescans() {
        let mut t = TimerSlots::new(3);
        t.arm(0, 100);
        t.arm(1, 300);
        // Re-arm the earliest CPU to a later deadline: CPU 1 must surface.
        t.arm(0, 1000);
        assert_eq!(t.earliest(), Some((1, 300)));
        assert_eq!(t.deadline(0), Some(1000));
    }

    #[test]
    fn disarm_clears_and_rescans() {
        let mut t = TimerSlots::new(3);
        t.arm(0, 100);
        t.arm(2, 150);
        t.disarm(0);
        assert_eq!(t.earliest(), Some((2, 150)));
        t.disarm(2);
        assert!(t.is_empty());
        assert_eq!(t.earliest(), None);
    }

    #[test]
    fn disarming_unarmed_slot_is_noop() {
        let mut t = TimerSlots::new(2);
        t.arm(1, 50);
        t.disarm(0);
        assert_eq!(t.earliest(), Some((1, 50)));
    }

    #[test]
    fn rearm_storm_keeps_single_slot() {
        let mut t = TimerSlots::new(2);
        for i in 0..10_000u64 {
            t.arm(0, 10 + i);
        }
        // Only the latest programming is live.
        assert_eq!(t.deadline(0), Some(10_009));
        assert_eq!(t.earliest(), Some((0, 10_009)));
        assert_eq!(t.arms(), 10_000);
    }

    #[test]
    fn equal_deadlines_resolve_deterministically() {
        let mut a = TimerSlots::new(4);
        let mut b = TimerSlots::new(4);
        for t in [&mut a, &mut b] {
            t.arm(2, 100);
            t.arm(1, 100);
            t.arm(3, 100);
        }
        assert_eq!(a.earliest(), b.earliest());
    }

    #[test]
    fn due_before_merges_on_deadline_not_after() {
        let mut t = TimerSlots::new(2);
        assert_eq!(t.due_before(None), None);
        assert_eq!(t.due_before(Some(100)), None);
        t.arm(1, 50);
        // Queue empty: any armed timer is due.
        assert_eq!(t.due_before(None), Some((1, 50)));
        // Earlier or equal head: due (equality fires the timer first).
        assert_eq!(t.due_before(Some(80)), Some((1, 50)));
        assert_eq!(t.due_before(Some(50)), Some((1, 50)));
        // Head strictly earlier than the deadline: queue event goes first.
        assert_eq!(t.due_before(Some(49)), None);
    }

    #[test]
    fn matches_bruteforce_min_under_mixed_ops() {
        let mut t = TimerSlots::new(8);
        let mut state = 0x9E37_79B9u64;
        let mut next = |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        for _ in 0..5000 {
            let cpu = next(8) as usize;
            if next(5) == 0 {
                t.disarm(cpu);
            } else {
                t.arm(cpu, next(1 << 40));
            }
            let brute = t.deadlines.iter().copied().filter(|&d| d != UNARMED).min();
            assert_eq!(t.earliest().map(|(_, d)| d), brute);
        }
    }
}
