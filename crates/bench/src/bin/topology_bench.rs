//! Topology scale sweep: flat vs 2-package × 4-LLC machines at
//! 256/512/1024 CPUs (DESIGN.md §6e).
//!
//! Runs the miss-rate, group-sync, and steal-storm workloads over every
//! (CPU count, topology) cell — the storm additionally A/Bs
//! `StealPolicy::LlcFirst` against `Uniform` — and reports events/s,
//! steal locality hit rate, and cross-package kick fraction. Writes
//! `results/topology.csv` and `BENCH_topology.json`. Default scale is
//! quick (the CI smoke run: 1024 CPUs only); pass `--paper` for the full
//! 256/512/1024 curve.

use nautix_bench::{banner, f, out_dir, topology, write_csv, BenchReport, Scale};
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    banner("Topology scale sweep: flat vs 2x4, LLC-biased vs uniform stealing");
    let hc = HarnessConfig::from_env();
    let (rows, sections) = topology::sweep_with_stats(&hc, scale, 11);

    println!(
        "workload,n_cpus,topology,events,makespan_ms,miss_rate,spread_mean_cycles,\
         steals,steal_llc,steal_pkg,steal_xpkg,locality_hit_rate,\
         ipi_llc,ipi_pkg,ipi_xpkg,cross_pkg_kick_frac"
    );
    for p in &rows {
        println!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.workload,
            p.n_cpus,
            p.topology,
            p.events,
            f(p.makespan_ms),
            f(p.miss_rate),
            f(p.spread_mean_cycles),
            p.steals,
            p.steals_by_distance[0],
            p.steals_by_distance[1],
            p.steals_by_distance[2],
            f(p.locality_hit_rate()),
            p.ipis_by_distance[0],
            p.ipis_by_distance[1],
            p.ipis_by_distance[2],
            f(p.cross_package_kick_fraction()),
        );
    }
    write_csv(
        &out_dir().join("topology.csv"),
        &[
            "workload",
            "n_cpus",
            "topology",
            "events",
            "makespan_ms",
            "miss_rate",
            "spread_mean_cycles",
            "steals",
            "steal_llc",
            "steal_pkg",
            "steal_xpkg",
            "locality_hit_rate",
            "ipi_llc",
            "ipi_pkg",
            "ipi_xpkg",
            "cross_pkg_kick_frac",
        ],
        rows.iter().map(|p| {
            vec![
                p.workload.to_string(),
                p.n_cpus.to_string(),
                p.topology.clone(),
                p.events.to_string(),
                f(p.makespan_ms),
                f(p.miss_rate),
                f(p.spread_mean_cycles),
                p.steals.to_string(),
                p.steals_by_distance[0].to_string(),
                p.steals_by_distance[1].to_string(),
                p.steals_by_distance[2].to_string(),
                f(p.locality_hit_rate()),
                p.ipis_by_distance[0].to_string(),
                p.ipis_by_distance[1].to_string(),
                p.ipis_by_distance[2].to_string(),
                f(p.cross_package_kick_fraction()),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("topology.csv"));

    let mut report = BenchReport::new();
    for (name, stats) in sections {
        println!(
            "{name}: {} trials on {} threads, {:.2}s wall, {:.0} events/s",
            stats.trials,
            stats.threads,
            stats.wall_secs,
            stats.events_per_sec()
        );
        report.add(name, stats);
    }

    // The headline A/B: at each tree cell, LLC-biased stealing must beat
    // uniform on locality hit rate and not lose on simulated makespan.
    for p in rows.iter().filter(|p| p.workload == "steal_llcfirst") {
        if let Some(u) = rows.iter().find(|u| {
            u.workload == "steal_uniform" && u.n_cpus == p.n_cpus && u.topology == p.topology
        }) {
            // Simulated throughput (events per simulated second) is the
            // deterministic form of the events/s comparison: uniform
            // stealing burns extra probe events *and* extra simulated
            // time, so it completes the same backlog slower even when
            // its host-side event grind rate looks similar.
            let sim_rate = |x: &nautix_bench::topology::TopoPoint| {
                if x.makespan_ms > 0.0 {
                    x.events as f64 / (x.makespan_ms / 1e3)
                } else {
                    0.0
                }
            };
            let line = format!(
                "{} cpus {}: LlcFirst locality {} vs Uniform {}; makespan {} ms vs {} ms; \
                 {:.0} vs {:.0} simulated events/s",
                p.n_cpus,
                p.topology,
                f(p.locality_hit_rate()),
                f(u.locality_hit_rate()),
                f(p.makespan_ms),
                f(u.makespan_ms),
                sim_rate(p),
                sim_rate(u),
            );
            println!("{line}");
            report.note(line);
            if p.topology != "flat" && p.locality_hit_rate() <= u.locality_hit_rate() {
                report.note(format!(
                    "ADVISORY: LLC-biased stealing did not beat uniform on locality \
                     at {} cpus {}",
                    p.n_cpus, p.topology
                ));
            }
        }
    }
    report.write(std::path::Path::new("BENCH_topology.json"));
    println!("wrote BENCH_topology.json");
}
