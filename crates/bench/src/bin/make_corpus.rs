//! Regenerate the replay regression corpus under
//! `crates/bench/tests/replays/` and print the pin table
//! (`name events headline`) that `tests/replay_corpus.rs` asserts.
//!
//! Run from the repo root after an intentional behavior change:
//!
//! ```text
//! cargo run -p nautix-bench --bin make_corpus
//! ```
//!
//! then update the `PINS` table in the corpus test from the output. The
//! corpus covers the codec and determinism surface, not the physics:
//! flat vs hierarchical topology, heap vs wheel event queues, each fault
//! lane in isolation, and a degradation-churn case.

use nautix_bench::Scenario;
use nautix_cluster::PlacementStrategy;
use nautix_des::QueueKind;
use nautix_hw::{FaultPattern, FaultPlan, Platform, Topology};

/// The ten corpus scenarios. Quick-sized: the whole corpus replays in
/// a few seconds.
pub fn corpus() -> Vec<Scenario> {
    let mut v = Vec::new();

    // 1. Flat topology, heap queue, trivially feasible miss-rate point.
    let mut sc = Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 60, 5);
    sc.machine.queue = QueueKind::Heap;
    sc.machine.topology = Topology::flat();
    sc.name = "flat_heap_feasible".into();
    v.push(sc);

    // 2. 2x4 topology, wheel queue, 8 CPUs, tight but feasible.
    let mut sc = Scenario::missrate(Platform::Phi, 100_000, 30_000, 60, 5);
    sc.machine.queue = QueueKind::Wheel;
    sc.machine.topology = Topology::parse("2x4").unwrap();
    sc.machine.n_cpus = 8;
    sc.name = "t2x4_wheel_tight".into();
    v.push(sc);

    // 3. The Figure 6 infeasible edge: 10 µs period, 70% slice on Phi.
    let mut sc = Scenario::missrate(Platform::Phi, 10_000, 7_000, 100, 5);
    sc.machine.queue = QueueKind::Wheel;
    sc.machine.topology = Topology::flat();
    sc.name = "phi_edge_infeasible".into();
    v.push(sc);

    // 4-7. Each fault lane in isolation, carved out of the full noisy
    // plan so rates and costs match the sweep preset.
    type LaneCarve = fn(FaultPlan) -> FaultPlan;
    let full = |sc: &Scenario| FaultPlan::noisy(sc.machine.platform.freq(), 1.0);
    let lanes: [(&str, LaneCarve); 4] = [
        ("lane_kick", |p| FaultPlan {
            kick_drop_ppm: p.kick_drop_ppm,
            kick_delay_ppm: p.kick_delay_ppm,
            kick_delay_extra: p.kick_delay_extra,
            ..FaultPlan::disabled()
        }),
        ("lane_timer_overshoot", |p| FaultPlan {
            timer_overshoot_ppm: p.timer_overshoot_ppm,
            timer_overshoot_extra: p.timer_overshoot_extra,
            ..FaultPlan::disabled()
        }),
        ("lane_freq_dip", |p| FaultPlan {
            freq_dip: p.freq_dip,
            freq_dip_duration: p.freq_dip_duration,
            freq_dip_loss_pct: p.freq_dip_loss_pct,
            ..FaultPlan::disabled()
        }),
        ("lane_spurious_stall", |p| FaultPlan {
            spurious_irq: p.spurious_irq,
            spurious_irq_line: p.spurious_irq_line,
            cpu_stall: p.cpu_stall,
            cpu_stall_duration: p.cpu_stall_duration,
            ..FaultPlan::disabled()
        }),
    ];
    for (name, carve) in lanes {
        let mut sc = Scenario::fault_mix(1.0, 100_000, 60, 150, 7);
        sc.machine.faults = carve(full(&sc));
        assert!(sc.machine.faults.enabled(), "{name}: lane carve is empty");
        sc.name = name.into();
        v.push(sc);
    }

    // 8. Widening churn: short period, fat slice, hostile intensity —
    // sustained misses drive repeated periodic widening.
    let mut sc = Scenario::fault_mix(1.0, 30_000, 60, 150, 7);
    sc.name = "widening_churn".into();
    v.push(sc);

    // 9. Cluster placement under churn: a 3-shard fleet admitting 200
    // tenant gangs with power-of-two-choices. Pins the cluster codec tag
    // and the whole placement/departure history (the headline's
    // `cluster=` triple). Queue and topology are pinned by the cluster
    // constructor itself (wheel, flat).
    let mut sc = Scenario::cluster(3, 8, 200, PlacementStrategy::PowerOfTwo, 5);
    sc.name = "cluster_po2_churn".into();
    v.push(sc);

    // 10. Layer starvation: the three-layer table throttles an
    // always-runnable background hog under RT saturation, pinning codec
    // v3's `sched.layers` line and the throttle/replenish history.
    let mut sc = Scenario::layer_starve(1_000_000, 70, 100, 5);
    sc.name = "layer_starve_bg".into();
    v.push(sc);

    for sc in &v {
        assert!(
            matches!(
                sc.machine.faults.cpu_stall,
                FaultPattern::Disabled | FaultPattern::Poisson { .. }
            ),
            "corpus plans stay on preset patterns"
        );
    }
    v
}

fn main() {
    let dir = std::path::Path::new("crates/bench/tests/replays");
    std::fs::create_dir_all(dir).expect("create corpus dir");
    println!("{:<24} {:>10}  headline", "name", "events");
    for sc in corpus() {
        let path = dir.join(format!("{}.replay", sc.name));
        std::fs::write(&path, sc.to_replay_string())
            .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        let out = sc.run_fresh().expect("corpus scenario is runnable");
        println!(
            "{:<24} {:>10}  {}",
            sc.name,
            out.events,
            out.snapshot.headline()
        );
    }
}
