//! Whole-node integration tests: boot, threads, admission, real-time
//! execution, groups, stealing, tasks, and interrupt steering.

use nautix_hw::{Cost, MachineConfig, SmiConfig, SmiPattern};
use nautix_kernel::{Action, Constraints, FnProgram, Script, SysCall, SysResult};
use nautix_rt::{AdmissionError, Node, NodeConfig, SchedMode};

fn small_node(cpus: usize) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(cpus).with_seed(1234);
    Node::new(cfg)
}

#[test]
fn boots_and_is_quiescent_without_threads() {
    let mut node = small_node(4);
    node.run_until_quiescent();
    assert_eq!(node.live_programs(), 0);
}

#[test]
fn runs_a_simple_compute_program_to_exit() {
    let mut node = small_node(2);
    let tid = node
        .spawn_on(
            1,
            "worker",
            Box::new(Script::new(vec![
                Action::Compute(10_000),
                Action::Compute(5_000),
            ])),
        )
        .unwrap();
    node.run_until_quiescent();
    assert_eq!(node.live_programs(), 0);
    assert!(node.thread_state(tid).stats.executed_cycles >= 15_000);
}

#[test]
fn sleep_delays_execution() {
    let mut node = small_node(2);
    let tid = node
        .spawn_on(
            1,
            "sleeper",
            Box::new(Script::new(vec![
                Action::Call(SysCall::SleepNs(1_000_000)), // 1 ms
                Action::Compute(1_000),
            ])),
        )
        .unwrap();
    node.run_until_quiescent();
    let _ = tid;
    // 1 ms at 1.3 GHz is 1.3M cycles; the machine must have advanced past it.
    assert!(node.machine.now() > 1_300_000);
}

#[test]
fn change_constraints_result_is_delivered() {
    let mut node = small_node(2);
    let mut results = Vec::new();
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let log2 = log.clone();
    let prog = FnProgram::new(move |cx, n| match n {
        0 => Action::Call(SysCall::ChangeConstraints(
            Constraints::periodic(1_000_000, 100_000).build(),
        )),
        1 => {
            log2.borrow_mut().push(cx.result);
            Action::Compute(1_000)
        }
        _ => Action::Exit,
    });
    node.spawn_on(1, "rt", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    results.extend(log.borrow().iter().copied());
    assert_eq!(results, vec![SysResult::Admission(Ok(()))]);
}

#[test]
fn infeasible_constraints_are_rejected() {
    let mut node = small_node(2);
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let log2 = log.clone();
    let prog = FnProgram::new(move |cx, n| match n {
        0 => Action::Call(SysCall::ChangeConstraints(
            Constraints::periodic(
                100_000, 95_000, // 95% > the 79% periodic budget
            )
            .build(),
        )),
        1 => {
            log2.borrow_mut().push(cx.result);
            Action::Exit
        }
        _ => Action::Exit,
    });
    node.spawn_on(1, "greedy", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    assert_eq!(
        log.borrow()[0],
        SysResult::Admission(Err(AdmissionError::UtilizationExceeded))
    );
}

#[test]
fn periodic_thread_meets_feasible_deadlines() {
    let mut node = small_node(2);
    // 1 ms period, 200 us slice; run ~60 ms of virtual time, computing
    // forever so every job's slice is exercised.
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 200_000).build(),
            ))
        } else {
            Action::Compute(50_000)
        }
    });
    let tid = node.spawn_on(1, "rt", Box::new(prog)).unwrap();
    node.run_for_ns(60_000_000);
    let st = node.thread_state(tid);
    assert!(st.stats.arrivals >= 50, "arrivals={}", st.stats.arrivals);
    assert_eq!(st.stats.missed, 0, "feasible constraints must never miss");
    assert!(st.stats.met >= 50);
}

#[test]
fn infeasible_period_misses_with_admission_disabled() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(7);
    cfg.sched.admission_enabled = false;
    cfg.sched.min_period_ns = 1_000;
    let mut node = Node::new(cfg);
    // 8 us period with a 7 us slice: overhead (~4.6 us/interrupt) makes
    // this hopeless on the Phi (Figure 6's infeasible region).
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(8_000, 7_000).build(),
            ))
        } else {
            Action::Compute(50_000)
        }
    });
    let tid = node.spawn_on(1, "doomed", Box::new(prog)).unwrap();
    node.run_for_ns(20_000_000);
    let st = node.thread_state(tid);
    assert!(st.stats.arrivals > 100);
    assert!(
        st.stats.miss_rate() > 0.9,
        "miss rate {} should be ~1 in the infeasible region",
        st.stats.miss_rate()
    );
    // Miss times stay small relative to the period (Figure 8).
    let mt = st.stats.miss_time_summary();
    assert!(mt.mean < 20_000.0, "mean miss time {} ns", mt.mean);
}

#[test]
fn group_admission_gang_schedules_and_phase_corrects() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(9).with_seed(5);
    cfg.dispatch_log_cap = 64;
    cfg.record_ga_timing = true;
    let mut node = Node::new(cfg);
    let gid = nautix_kernel::GroupId(0);
    let mut tids = Vec::new();
    for cpu in 1..9 {
        // The creator has one extra leading step; `k` is the common index.
        let prog = FnProgram::new(move |cx, n| {
            let k = if cpu == 1 { n } else { n + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "gang" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                // Everyone sleeps past the join traffic so membership is
                // settled before admission begins (as in the paper: all
                // threads join, then the group changes constraints).
                2 => Action::Call(SysCall::SleepNs(500_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::Periodic {
                        phase: 100_000,
                        period: 1_000_000,
                        slice: 300_000,
                    },
                }),
                4 => {
                    assert_eq!(cx.result, SysResult::Admission(Ok(())));
                    Action::Compute(100_000)
                }
                k if k < 21 => Action::Compute(100_000),
                _ => Action::Exit,
            }
        });
        tids.push(
            node.spawn_on(cpu, &format!("g{cpu}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_for_ns(60_000_000);
    node.run_until_quiescent();
    // Every member got RT dispatches; compare dispatch times after the
    // last member finished admission (the gang-scheduled regime).
    let t_admitted = node.ga_timings().iter().map(|t| t.t_done).max().unwrap();
    let mut logs: Vec<nautix_rt::DispatchLog> = Vec::new();
    for &t in &tids {
        let full = &node.thread_state(t).dispatch_log;
        let mut filtered = nautix_rt::DispatchLog::with_capacity(64);
        for &x in full.times().iter().filter(|&&x| x > t_admitted) {
            filtered.record(x);
        }
        assert!(filtered.len() >= 3, "each member must run gang-scheduled");
        logs.push(filtered);
    }
    let refs: Vec<&nautix_rt::DispatchLog> = logs.iter().collect();
    let spreads = nautix_rt::dispatch_spreads(&refs);
    for &s in &spreads {
        assert!(
            s < 20_000,
            "gang dispatch spread {s} ns is too wide for lock-step execution"
        );
    }
    assert_eq!(node.ga_timings().len(), 8, "one timing record per member");
    for t in node.ga_timings() {
        assert!(t.t_elect >= t.t_call);
        assert!(t.t_reduce >= t.t_elect);
        assert!(t.t_done >= t.t_reduce);
        assert_eq!(t.n, 8);
    }
}

#[test]
fn group_admission_fails_atomically_when_one_cpu_is_full() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(5).with_seed(5);
    // Pin the load shape: stealing could migrate the queued squatter to an
    // idle CPU and change which local admission fails.
    cfg.sched.work_stealing = false;
    let mut node = Node::new(cfg);
    let gid = nautix_kernel::GroupId(0);
    // A squatter occupies most of CPU 2's RT budget.
    let squatter = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 700_000).build(),
            ))
        } else {
            Action::Compute(1_000_000)
        }
    });
    node.spawn_on(2, "squatter", Box::new(squatter)).unwrap();
    let results = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut tids = Vec::new();
    for cpu in 1..5 {
        let results2 = results.clone();
        let prog = FnProgram::new(move |cx, n| {
            let k = if cpu == 1 { n } else { n + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "gang" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(500_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    // 40%: fits everywhere except the squatter's CPU.
                    constraints: Constraints::periodic(1_000_000, 400_000).build(),
                }),
                4 => {
                    results2.borrow_mut().push(cx.result);
                    Action::Exit
                }
                _ => Action::Exit,
            }
        });
        tids.push(
            node.spawn_on(cpu, &format!("g{cpu}"), Box::new(prog))
                .unwrap(),
        );
    }
    node.run_for_ns(50_000_000);
    let rs = results.borrow();
    assert_eq!(rs.len(), 4, "all members must get an answer");
    for r in rs.iter() {
        assert_eq!(
            *r,
            SysResult::Admission(Err(AdmissionError::GroupMemberRejected)),
            "group admission must fail for every member"
        );
    }
    // The members fell back to aperiodic and none hold RT constraints.
    for &t in &tids {
        assert!(!node.thread_state(t).is_rt());
    }
}

#[test]
fn work_stealing_migrates_aperiodic_threads() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(4).with_seed(3);
    let mut node = Node::new(cfg);
    // Pile several compute-bound, *unbound* threads on CPU 1.
    for i in 0..6 {
        node.spawn_unbound(
            1,
            &format!("w{i}"),
            Box::new(Script::new(vec![
                Action::Compute(50_000_000), // ~38 ms each
            ])),
        )
        .unwrap();
    }
    node.run_until_quiescent();
    let steals: u64 = (0..4).map(|c| node.scheduler(c).stats.steals).sum();
    assert!(steals > 0, "idle CPUs should have stolen work");
    // Stolen threads really executed elsewhere: some thread's final CPU
    // differs from 1 — visible through steal counts on other CPUs.
    assert!((0..4)
        .filter(|&c| c != 1)
        .any(|c| node.scheduler(c).stats.steals > 0));
}

#[test]
fn bound_threads_are_never_stolen_even_with_backlog() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(4).with_seed(3);
    let mut node = Node::new(cfg);
    // Six *bound* compute threads piled on CPU 1: backlog exists, but
    // bound threads must not migrate.
    for i in 0..6 {
        node.spawn_on(
            1,
            &format!("b{i}"),
            Box::new(Script::new(vec![Action::Compute(5_000_000)])),
        )
        .unwrap();
    }
    node.run_until_quiescent();
    let steals: u64 = (0..4).map(|c| node.scheduler(c).stats.steals).sum();
    assert_eq!(steals, 0, "bound threads migrated");
}

#[test]
fn rt_threads_are_never_stolen() {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(3).with_seed(3);
    let mut node = Node::new(cfg);
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 500_000).build(),
            ))
        } else if n < 20 {
            Action::Compute(400_000)
        } else {
            Action::Exit
        }
    });
    let tid = node.spawn_on(1, "rt", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    // The RT thread must have stayed on CPU 1 (dispatches only there).
    assert_eq!(node.thread_state(tid).stats.missed, 0);
    assert_eq!(node.scheduler(0).stats.steals, 0);
    assert_eq!(node.scheduler(2).stats.steals, 0);
}

#[test]
fn sized_tasks_run_inline_and_unsized_via_idle() {
    let mut node = small_node(2);
    let prog = FnProgram::new(move |_cx, n| match n {
        0 => Action::Call(SysCall::TaskSpawn {
            size: Some(5_000),
            work: 5_000,
        }),
        1 => Action::Call(SysCall::TaskSpawn {
            size: None,
            work: 10_000,
        }),
        2 => Action::Compute(1_000),
        _ => Action::Exit,
    });
    node.spawn_on(1, "spawner", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    let t = node.tasks(1);
    assert_eq!(t.inline_completed, 1, "sized task must run inline");
    assert_eq!(t.helper_completed, 1, "unsized task must run via idle");
    assert!(t.is_empty());
}

#[test]
fn smi_injection_causes_misses_in_lazy_mode_but_not_eager() {
    let run = |mode: SchedMode| {
        let mut cfg = NodeConfig::phi();
        cfg.machine = MachineConfig::phi()
            .with_cpus(2)
            .with_seed(11)
            .with_smi(SmiConfig {
                pattern: SmiPattern::Poisson {
                    mean_interval: 13_000_000, // ~every 10 ms
                },
                duration: Cost::new(130_000, 26_000), // ~100 us stalls
            });
        cfg.sched.mode = mode;
        let mut node = Node::new(cfg);
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(
                    Constraints::periodic(
                        1_000_000, 300_000, // 30%: plenty of slack
                    )
                    .build(),
                ))
            } else {
                Action::Compute(250_000)
            }
        });
        let tid = node.spawn_on(1, "rt", Box::new(prog)).unwrap();
        node.run_for_ns(400_000_000); // 0.4 s
        let st = node.thread_state(tid);
        assert!(node.machine.smi_stats().count > 10, "SMIs must have fired");
        (st.stats.miss_rate(), st.stats.arrivals)
    };
    let (eager_rate, eager_arrivals) = run(SchedMode::Eager);
    let (lazy_rate, _) = run(SchedMode::Lazy);
    assert!(eager_arrivals > 300);
    assert!(
        eager_rate < 0.02,
        "eager scheduling should absorb SMIs (rate {eager_rate})"
    );
    assert!(
        lazy_rate > eager_rate,
        "lazy ({lazy_rate}) must miss more than eager ({eager_rate}) under SMIs"
    );
}

#[test]
fn device_interrupts_stay_in_the_laden_partition() {
    let mut node = small_node(4);
    for _ in 0..20 {
        node.raise_device_irq(5);
        node.run_for_ns(100_000);
    }
    node.run_until_quiescent();
    assert_eq!(
        node.device_irqs_handled[0], 20,
        "default partition is CPU 0"
    );
    for c in 1..4 {
        assert_eq!(node.device_irqs_handled[c], 0, "CPU {c} is interrupt-free");
    }
}

#[test]
fn gpio_syscall_reaches_the_port() {
    let mut node = small_node(2);
    node.machine.gpio().start_capture();
    node.spawn_on(
        1,
        "blink",
        Box::new(Script::new(vec![
            Action::Call(SysCall::GpioSet { pin: 2, high: true }),
            Action::Compute(10_000),
            Action::Call(SysCall::GpioSet {
                pin: 2,
                high: false,
            }),
        ])),
    )
    .unwrap();
    node.run_until_quiescent();
    let trace = node.machine.gpio().take_trace();
    assert_eq!(trace.len(), 2);
    assert_eq!(trace[0].pins & 0b100, 0b100);
    assert_eq!(trace[1].pins & 0b100, 0);
    assert!(trace[1].time - trace[0].time >= 10_000);
}

#[test]
fn node_runs_are_deterministic() {
    let run = || {
        let mut node = small_node(3);
        for cpu in 1..3 {
            let prog = FnProgram::new(move |_cx, n| {
                if n == 0 {
                    Action::Call(SysCall::ChangeConstraints(
                        Constraints::periodic(500_000, 100_000).build(),
                    ))
                } else if n < 50 {
                    Action::Compute(90_000)
                } else {
                    Action::Exit
                }
            });
            node.spawn_on(cpu, "d", Box::new(prog)).unwrap();
        }
        node.run_until_quiescent();
        (
            node.machine.now(),
            node.machine.events_processed(),
            (1..3)
                .map(|c| node.scheduler(c).stats.invocations)
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
