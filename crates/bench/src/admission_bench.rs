//! Admission-engine microbenchmark: the incremental utilization ledger
//! with the memoized hyperperiod simulation against the fresh-recompute
//! reference engine, on the workload the engine exists for —
//! re-admission-heavy churn.
//!
//! Period-widening degradation (PR 4) and group re-throttling put
//! *re-admission* on a hot path: the same thread cycles between a small
//! number of constraint shapes, and every verdict under
//! [`AdmissionPolicy::HyperperiodSim`] used to replay the full
//! event-driven feasibility simulation. The incremental engine memoizes
//! verdicts by canonical task-set signature, so a churn cycle that
//! alternates between two shapes costs two simulations ever, not one per
//! verdict. This bench measures exactly that: a widening-churn loop over
//! a base set of admitted tasks, timed once per engine.

use crate::common::Scale;
use nautix_des::Nanos;
use nautix_rt::{AdmissionEngine, AdmissionPolicy, Constraints, CpuLoad, SchedConfig, SimCache};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct AdmissionPoint {
    /// Base tasks admitted before the churn starts.
    pub tasks: usize,
    /// Widen → re-admit → restore churn iterations (two verdicts each).
    pub iters: usize,
    /// Wall time of the churn loop under the fresh-recompute engine, s.
    pub fresh_secs: f64,
    /// Wall time under the incremental engine with the memo installed, s.
    pub incr_secs: f64,
    /// `fresh_secs / incr_secs`.
    pub speedup: f64,
    /// Memo hits recorded by the incremental ledger.
    pub hits: u64,
    /// Simulations actually run by the incremental ledger.
    pub misses: u64,
    /// Simulations run by the fresh ledger (all verdicts).
    pub fresh_sims: u64,
}

/// The simulation-heavy scheduler configuration both engines run under.
/// The window cap bounds each feasibility simulation; larger windows mean
/// more simulated jobs per verdict and a hotter path to memoize.
fn sim_config(engine: AdmissionEngine, window_cap_ns: Nanos) -> SchedConfig {
    SchedConfig {
        policy: AdmissionPolicy::HyperperiodSim {
            overhead_ns: 2_000,
            window_cap_ns,
        },
        engine,
        ..SchedConfig::throughput()
    }
}

/// The base task set for a point: `tasks` periodic threads at ~5% each,
/// with co-prime-leaning periods so the hyperperiod fills the window.
fn base_set(tasks: usize) -> Vec<Constraints> {
    (0..tasks)
        .map(|i| {
            let period = 1_000_000 + (i as u64) * 300_100;
            Constraints::periodic(period, period / 20).build()
        })
        .collect()
}

/// Run the widening-churn loop against one ledger and return the wall
/// time plus the verdict sequence (for differential checking).
fn churn(load: &mut CpuLoad, cfg: &SchedConfig, tasks: usize, iters: usize) -> (f64, Vec<bool>) {
    for c in base_set(tasks) {
        load.admit(cfg, &c).expect("base task admission");
    }
    // The churning reservation cycles between its admitted shape and the
    // 25%-widened shape PR 4's degradation would resubmit.
    let tight = Constraints::periodic(2_000_000, 150_000).build();
    let wide = Constraints::periodic(2_500_000, 150_000).build();
    load.admit(cfg, &tight).expect("churn task admission");
    let mut verdicts = Vec::with_capacity(iters * 2);
    let t0 = Instant::now();
    for _ in 0..iters {
        load.release(&tight);
        verdicts.push(load.admit(cfg, &wide).is_ok());
        load.release(&wide);
        verdicts.push(load.admit(cfg, &tight).is_ok());
    }
    let secs = t0.elapsed().as_secs_f64();
    for c in base_set(tasks) {
        load.release(&c);
    }
    load.release(&tight);
    (secs, verdicts)
}

/// Measure one point: the identical churn under both engines. Panics if
/// the engines ever disagree on a verdict — the bench doubles as a
/// coarse differential check.
pub fn measure_point(tasks: usize, iters: usize, window_cap_ns: Nanos) -> AdmissionPoint {
    let fresh_cfg = sim_config(AdmissionEngine::Fresh, window_cap_ns);
    let mut fresh = CpuLoad::new();
    let (fresh_secs, fresh_verdicts) = churn(&mut fresh, &fresh_cfg, tasks, iters);
    let fresh_stats = fresh.admission_stats();

    let incr_cfg = sim_config(AdmissionEngine::Incremental, window_cap_ns);
    let mut incr = CpuLoad::new();
    incr.install_sim_cache(Rc::new(RefCell::new(SimCache::new())));
    let (incr_secs, incr_verdicts) = churn(&mut incr, &incr_cfg, tasks, iters);
    let incr_stats = incr.admission_stats();

    assert_eq!(
        fresh_verdicts, incr_verdicts,
        "engines diverged at tasks={tasks}"
    );
    AdmissionPoint {
        tasks,
        iters,
        fresh_secs,
        incr_secs,
        speedup: if incr_secs > 0.0 {
            fresh_secs / incr_secs
        } else {
            0.0
        },
        hits: incr_stats.sim_hits,
        misses: incr_stats.sim_misses,
        fresh_sims: fresh_stats.sim_misses,
    }
}

/// The full sweep at a scale.
pub fn run(scale: Scale) -> Vec<AdmissionPoint> {
    let (task_counts, iters, window): (&[usize], usize, Nanos) = match scale {
        Scale::Quick => (&[4, 8], 60, 40_000_000),
        Scale::Paper => (&[4, 8, 12, 16], 400, 120_000_000),
    };
    task_counts
        .iter()
        .map(|&t| measure_point(t, iters, window))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_and_the_memo_converges() {
        let p = measure_point(4, 20, 20_000_000);
        // Two shapes churn, so the memo needs at most a handful of
        // simulations (base-set growth included) and serves the rest.
        assert!(p.hits > 0, "no memo hits on a churn workload");
        assert!(
            p.misses < p.fresh_sims,
            "memoized engine simulated as much as fresh ({} vs {})",
            p.misses,
            p.fresh_sims
        );
        // Every verdict under fresh runs a simulation: base admissions,
        // the churn admission, and two per iteration.
        assert_eq!(p.fresh_sims, 4 + 1 + 2 * 20);
    }
}
