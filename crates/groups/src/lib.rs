//! Thread groups and their coordination substrate (§4.2, §4.4).
//!
//! Parallel execution demands collectively scheduling a *group* of threads
//! across CPUs. This crate provides the group machinery the paper's group
//! admission control (Algorithm 1, implemented in `nautix-rt`) is built
//! from:
//!
//! * [`registry`] — create/join/leave/destroy of named groups with
//!   attached state and the leader lock,
//! * [`coord`] — distributed election, reduction, and broadcast as
//!   linear-cost blocking collectives (plus the barrier from
//!   `nautix-kernel::sync`),
//! * [`phase`] — the phase-correction arithmetic that converts barrier
//!   release order into aligned first arrivals.

pub mod coord;
pub mod phase;
pub mod registry;

pub use coord::{Collective, CollectiveOutcome, CollectiveRelease, Decision};
pub use phase::{correct_constraints, correct_team, corrected_phase, estimate_delta};
pub use registry::{Group, GroupRegistry, MAX_GROUPS, MAX_GROUP_MEMBERS};
