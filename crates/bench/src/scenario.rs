//! Scenario record/replay: one trial, captured completely.
//!
//! A [`Scenario`] is everything that determines a trial's simulated
//! history: the full machine configuration (platform, CPU count, timer
//! mode, SMI/fault plans, queue backend, topology, seed), the scheduler
//! configuration, the node knobs the sweep harnesses touch, the oracle /
//! sabotage arming flags, and a [`Workload`] descriptor naming the
//! programs to spawn. Because every trial in this crate is a pure
//! function of its parameters (the harness contract), a `Scenario` is a
//! *sufficient* record: replaying it on any host, at any thread count,
//! pooled or fresh, reproduces the original trial's event count and
//! stats snapshot byte for byte.
//!
//! Scenarios serialize through a strict, versioned, serde-free text codec
//! ([`Scenario::to_replay_string`] / [`Scenario::from_replay_string`]):
//! fixed header, one `key value` line per field in a fixed order, `end`
//! terminator. Parsing never default-fills — unknown versions, missing or
//! reordered keys, truncated fault plans, and malformed values are all
//! hard errors, so a stale or corrupted replay file cannot silently
//! reproduce a *different* trial.
//!
//! The sweep harnesses ([`crate::missrate`], [`crate::fault_sweep`]) run
//! every trial through [`Scenario::run_recorded`], which additionally
//! (a) streams the trial's delta snapshot to the process stats hub when
//! one is installed, and (b) if `NAUTIX_REPLAY_DIR` is set and the trial
//! panics — an armed oracle flagging an invariant violation — writes
//! `<name>.replay` into that directory before propagating the panic, so a
//! one-in-a-million anomaly arrives as a one-line repro command.

use crate::harness::{stream_delta, NodePool};
use nautix_cluster::{ClusterConfig, ClusterOutcome, Fleet, PlacementStrategy};
use nautix_des::{Nanos, QueueKind};
use nautix_hw::{
    CpuId, FaultPlan, FaultStats, MachineConfig, Platform, SmiConfig, TimerMode, Topology,
};
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{
    AdmissionEngine, AdmissionPolicy, DegradePolicy, DegradeStats, HarnessConfig, LayerSpec,
    LayerTable, Node, NodeConfig, SchedConfig, SchedMode, StealPolicy,
};
use nautix_stats::StatsSnapshot;
use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Codec version. Bump when fields are added, removed, or reordered; a
/// parser only ever accepts its own version. v2 added the `cluster`
/// workload tag; v3 added the `sched.layers` table, the
/// `node.sabotage_layer` arming flag, and the `layer_mix` workload tag.
pub const REPLAY_VERSION: u32 = 3;

/// Header line of the replay codec.
pub const REPLAY_HEADER: &str = "nautix-replay v3";

/// What the trial runs on the configured node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The Figures 6–9 probe: one always-runnable periodic thread on
    /// CPU 1 requesting `(period, slice)` with one period of phase,
    /// running for `jobs + 20` periods.
    MissRate {
        /// Period τ in ns.
        period_ns: Nanos,
        /// Slice in ns.
        slice_ns: Nanos,
        /// Jobs to observe (run length is `period * (jobs + 20)`).
        jobs: u64,
    },
    /// The fault-sweep mix: a periodic probe on CPU 1 (slice =
    /// `period * pct / 100`, floored at 500 ns) plus a sporadic burst on
    /// CPU 2 (size = the probe slice, deadline = 4 periods).
    FaultMix {
        /// Probe period τ in ns.
        period_ns: Nanos,
        /// Probe slice as % of period.
        slice_pct: u64,
        /// Jobs to observe.
        jobs: u64,
    },
    /// Two competing periodic threads on CPU 1: `slow` (created first,
    /// so lower tid) at 5× the period, and `fast` at `(period, slice)`.
    /// Whenever both jobs are runnable EDF must pick `fast`, so this is
    /// the workload that makes a FIFO-sabotaged dispatcher visibly
    /// violate EDF — the oracle-emission smoke runs on it.
    Competing {
        /// Fast thread's period in ns (slow runs at 5×).
        period_ns: Nanos,
        /// Fast thread's slice in ns (slow gets 5×).
        slice_ns: Nanos,
        /// Fast-thread jobs to observe.
        jobs: u64,
    },
    /// A cluster admission run (codec v2): `shards` nodes — each built
    /// from the scenario's machine/sched configuration, per-shard seeds
    /// derived from `machine.seed` — processing `tenants` arrivals under
    /// `strategy`. The cluster-only knobs the scenario does not carry
    /// (slots per CPU, stream rates) are [`ClusterConfig::new`] defaults,
    /// which are part of the codec contract.
    Cluster {
        /// Fleet size.
        shards: usize,
        /// Tenant arrivals to process.
        tenants: u64,
        /// Placement strategy.
        strategy: PlacementStrategy,
    },
    /// The layer-starvation mix (codec v3): a periodic RT probe on CPU 1
    /// (slice = `period * slice_pct / 100`, floored at 500 ns) plus an
    /// always-runnable aperiodic hog on the same CPU. Under a three-layer
    /// table the hog's background layer drains its bucket every window
    /// and throttles — the layer-isolation oracle's primary subject.
    LayerMix {
        /// Probe period τ in ns.
        period_ns: Nanos,
        /// Probe slice as % of period.
        slice_pct: u64,
        /// Jobs to observe.
        jobs: u64,
    },
}

impl Workload {
    /// Canonical `tag:field:field:field` encoding.
    pub fn encode(&self) -> String {
        match *self {
            Workload::MissRate {
                period_ns,
                slice_ns,
                jobs,
            } => format!("missrate:{period_ns}:{slice_ns}:{jobs}"),
            Workload::FaultMix {
                period_ns,
                slice_pct,
                jobs,
            } => format!("fault_mix:{period_ns}:{slice_pct}:{jobs}"),
            Workload::Competing {
                period_ns,
                slice_ns,
                jobs,
            } => format!("competing:{period_ns}:{slice_ns}:{jobs}"),
            Workload::Cluster {
                shards,
                tenants,
                strategy,
            } => format!("cluster:{shards}:{tenants}:{}", strategy.name()),
            Workload::LayerMix {
                period_ns,
                slice_pct,
                jobs,
            } => format!("layer_mix:{period_ns}:{slice_pct}:{jobs}"),
        }
    }

    /// Strict inverse of [`Workload::encode`].
    pub fn decode(s: &str) -> Result<Workload, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 4 {
            return Err(format!(
                "workload: expected `<tag>:<period>:<slice>:<jobs>`, got `{s}`"
            ));
        }
        let n = |v: &str, what: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("workload {what}: `{v}` is not a u64"))
        };
        match parts[0] {
            "missrate" => Ok(Workload::MissRate {
                period_ns: n(parts[1], "period")?,
                slice_ns: n(parts[2], "slice")?,
                jobs: n(parts[3], "jobs")?,
            }),
            "fault_mix" => Ok(Workload::FaultMix {
                period_ns: n(parts[1], "period")?,
                slice_pct: n(parts[2], "slice_pct")?,
                jobs: n(parts[3], "jobs")?,
            }),
            "competing" => Ok(Workload::Competing {
                period_ns: n(parts[1], "period")?,
                slice_ns: n(parts[2], "slice")?,
                jobs: n(parts[3], "jobs")?,
            }),
            "cluster" => Ok(Workload::Cluster {
                shards: n(parts[1], "shards")?
                    .try_into()
                    .map_err(|_| "workload shards: does not fit usize".to_string())?,
                tenants: n(parts[2], "tenants")?,
                strategy: PlacementStrategy::parse(parts[3])
                    .map_err(|e| format!("workload strategy: {e}"))?,
            }),
            "layer_mix" => Ok(Workload::LayerMix {
                period_ns: n(parts[1], "period")?,
                slice_pct: n(parts[2], "slice_pct")?,
                jobs: n(parts[3], "jobs")?,
            }),
            tag => Err(format!("workload: unknown tag `{tag}`")),
        }
    }
}

/// Everything that determines one trial. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Replay-file stem; restricted to `[A-Za-z0-9._-]`.
    pub name: String,
    /// The full machine configuration, seed included.
    pub machine: MachineConfig,
    /// The boot-time scheduler configuration.
    pub sched: SchedConfig,
    /// CPUs receiving external device interrupts.
    pub laden: Vec<CpuId>,
    /// Boot-time TSC calibration rounds.
    pub calib_rounds: u32,
    /// System-wide thread bound.
    pub max_threads: usize,
    /// Idle work-steal poll interval.
    pub steal_poll_ns: Nanos,
    /// §4.4 phase correction during group admission.
    pub phase_correction: bool,
    /// Arm the online invariant oracles on the replayed node (requires
    /// the `trace` feature; replay errors rather than silently skipping).
    pub oracles: bool,
    /// Enable the deliberately broken FIFO dispatch on this CPU (the
    /// oracle-regression sabotage; requires `trace` like `oracles`).
    pub sabotage_fifo: Option<CpuId>,
    /// Enable the deliberately over-generous layer-bucket refill on this
    /// CPU (the layer-isolation-oracle sabotage; requires `trace`).
    pub sabotage_layer: Option<CpuId>,
    /// The programs to run.
    pub workload: Workload,
}

/// The observable result of one trial: the determinism contract is that a
/// replayed scenario reproduces this value byte for byte.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// Simulated machine events processed.
    pub events: u64,
    /// The node's full stats snapshot (`trials = 1`).
    pub snapshot: StatsSnapshot,
    /// Probe jobs completed (met + missed).
    pub jobs: u64,
    /// Probe deadline miss rate.
    pub miss_rate: f64,
    /// Mean lateness of missing probe jobs, ns.
    pub miss_mean_ns: f64,
    /// Standard deviation of probe lateness, ns.
    pub miss_std_ns: f64,
    /// Per-lane injection counters from the machine.
    pub faults: FaultStats,
    /// Degradation responses across the node's schedulers.
    pub degrade: DegradeStats,
}

impl Scenario {
    /// The Figures 6–9 trial (see [`crate::missrate`]): admission
    /// disabled so infeasible constraints can be mapped, floors lowered to
    /// admit µs-scale probes, 2 CPUs. Queue backend and topology come from
    /// the ambient environment exactly as the sweep's machines do — the
    /// recorded scenario pins whatever was in effect.
    pub fn missrate(
        platform: Platform,
        period_ns: Nanos,
        slice_ns: Nanos,
        jobs: u64,
        seed: u64,
    ) -> Scenario {
        let mut cfg = NodeConfig::for_machine(
            MachineConfig::for_platform(platform)
                .with_cpus(2)
                .with_seed(seed),
        );
        cfg.sched.admission_enabled = false;
        cfg.sched.min_period_ns = 100;
        cfg.sched.min_slice_ns = 50;
        cfg.sched.granularity_ns = 1;
        let name = format!(
            "missrate_{}_{}_{}_p{}_s{}_j{}_x{}",
            platform.encode(),
            cfg.machine.queue.label(),
            cfg.machine.topology.label(),
            period_ns,
            slice_ns,
            jobs,
            seed
        );
        Scenario::from_node_config(
            name,
            cfg,
            Workload::MissRate {
                period_ns,
                slice_ns,
                jobs,
            },
        )
    }

    /// The fault-sweep trial (see [`crate::fault_sweep`]): a 3-CPU Phi
    /// with [`FaultPlan::noisy`] at `intensity` (disabled at 0.0) and
    /// graceful degradation armed with a 2-miss threshold.
    pub fn fault_mix(
        intensity: f64,
        period_ns: Nanos,
        slice_pct: u64,
        jobs: u64,
        seed: u64,
    ) -> Scenario {
        let machine = MachineConfig::for_platform(Platform::Phi)
            .with_cpus(3)
            .with_seed(seed);
        let plan = if intensity > 0.0 {
            FaultPlan::noisy(machine.platform.freq(), intensity)
        } else {
            FaultPlan::disabled()
        };
        let degrade = DegradePolicy {
            miss_threshold: 2,
            ..DegradePolicy::enabled()
        };
        let name = format!(
            "fault_{}_{}_i{}_p{}_pct{}_j{}_x{}",
            machine.queue.label(),
            machine.topology.label(),
            (intensity * 100.0).round() as u64,
            period_ns,
            slice_pct,
            jobs,
            seed
        );
        let cfg = Node::builder(machine)
            .fault_plan(plan)
            .degrade(degrade)
            .into_config();
        Scenario::from_node_config(
            name,
            cfg,
            Workload::FaultMix {
                period_ns,
                slice_pct,
                jobs,
            },
        )
    }

    /// A competing-periodics trial on a default-configured 2-CPU Phi
    /// (admission on): the workload of the `oracle_sabotage` regression
    /// test, packaged as a replayable scenario. With `oracles` armed and
    /// `sabotage_fifo` set on CPU 1 the EDF oracle flags the first
    /// deadline-skipping dispatch, so this is the emission smoke's
    /// force-flagged trial.
    pub fn competing(period_ns: Nanos, slice_ns: Nanos, jobs: u64, seed: u64) -> Scenario {
        let cfg = NodeConfig::for_machine(
            MachineConfig::for_platform(Platform::Phi)
                .with_cpus(2)
                .with_seed(seed),
        );
        let name = format!(
            "competing_{}_{}_p{}_s{}_j{}_x{}",
            cfg.machine.queue.label(),
            cfg.machine.topology.label(),
            period_ns,
            slice_ns,
            jobs,
            seed
        );
        Scenario::from_node_config(
            name,
            cfg,
            Workload::Competing {
                period_ns,
                slice_ns,
                jobs,
            },
        )
    }

    /// A cluster admission run: `shards` nodes of `cpus` CPUs each
    /// processing `tenants` arrivals under `strategy` (see
    /// [`nautix_cluster`]). The machine and scheduler configuration are
    /// [`ClusterConfig::new`]'s — queue backend and topology pinned, the
    /// overhead-aware admission policy armed — so a recorded cluster
    /// scenario never depends on ambient environment knobs.
    pub fn cluster(
        shards: usize,
        cpus: usize,
        tenants: u64,
        strategy: PlacementStrategy,
        seed: u64,
    ) -> Scenario {
        let cc = ClusterConfig::new(shards, cpus, tenants, strategy).with_seed(seed);
        let mut cfg = NodeConfig::for_machine(cc.machine.clone().with_seed(seed));
        cfg.sched = cc.sched;
        let name = format!(
            "cluster_{}x{}_{}_t{}_x{}",
            shards,
            cpus,
            strategy.name(),
            tenants,
            seed
        );
        Scenario::from_node_config(
            name,
            cfg,
            Workload::Cluster {
                shards,
                tenants,
                strategy,
            },
        )
    }

    /// The layer-starvation trial: a 2-CPU Phi with the canonical
    /// three-layer table (RT 75%, batch 10%, background 10%, 10 ms
    /// windows) running [`Workload::LayerMix`]. The RT probe saturates
    /// its layer while the aperiodic hog's background layer throttles
    /// every window — the pinned corpus scenario for PR-10's bandwidth
    /// control, and the armed workload of the layer-oracle sabotage test.
    pub fn layer_starve(period_ns: Nanos, slice_pct: u64, jobs: u64, seed: u64) -> Scenario {
        let mut cfg = NodeConfig::for_machine(
            MachineConfig::for_platform(Platform::Phi)
                .with_cpus(2)
                .with_seed(seed),
        );
        cfg.sched.layers = LayerTable::three_way(
            LayerSpec {
                guarantee_ppm: 750_000,
                burst_ppm: 0,
            },
            LayerSpec {
                guarantee_ppm: 100_000,
                burst_ppm: 0,
            },
            LayerSpec {
                guarantee_ppm: 100_000,
                burst_ppm: 0,
            },
            10_000_000,
        )
        .expect("three-way layer table is valid");
        let name = format!(
            "layer_{}_{}_p{}_pct{}_j{}_x{}",
            cfg.machine.queue.label(),
            cfg.machine.topology.label(),
            period_ns,
            slice_pct,
            jobs,
            seed
        );
        Scenario::from_node_config(
            name,
            cfg,
            Workload::LayerMix {
                period_ns,
                slice_pct,
                jobs,
            },
        )
    }

    /// The [`ClusterConfig`] a [`Workload::Cluster`] scenario replays.
    ///
    /// # Panics
    /// If the workload is not a cluster run.
    pub fn cluster_config(&self) -> ClusterConfig {
        let Workload::Cluster {
            shards,
            tenants,
            strategy,
        } = self.workload
        else {
            panic!("scenario `{}` is not a cluster workload", self.name);
        };
        let mut cc = ClusterConfig::new(shards, self.machine.n_cpus, tenants, strategy)
            .with_seed(self.machine.seed);
        // The scenario's machine/sched lines override the constructor's
        // defaults — the replay file is the source of truth.
        cc.machine = self.machine.clone();
        cc.sched = self.sched;
        cc
    }

    /// Capture an assembled [`NodeConfig`] (the sweeps' exact construction
    /// path) into a scenario. The config's recording-only knobs
    /// (`dispatch_log_cap`, overhead/GA sampling) are not captured — the
    /// replayable workloads never set them, and they cannot change the
    /// simulated history.
    pub fn from_node_config(name: String, cfg: NodeConfig, workload: Workload) -> Scenario {
        Scenario {
            name,
            machine: cfg.machine,
            sched: cfg.sched,
            laden: cfg.laden,
            calib_rounds: cfg.calib_rounds,
            max_threads: cfg.max_threads,
            steal_poll_ns: cfg.steal_poll_ns,
            phase_correction: cfg.phase_correction,
            oracles: false,
            sabotage_fifo: None,
            sabotage_layer: None,
            workload,
        }
    }

    /// The [`NodeConfig`] this scenario replays on — the exact inverse of
    /// [`Scenario::from_node_config`].
    pub fn node_config(&self) -> NodeConfig {
        let mut cfg = NodeConfig::for_machine(self.machine.clone());
        cfg.sched = self.sched;
        cfg.laden = self.laden.clone();
        cfg.calib_rounds = self.calib_rounds;
        cfg.max_threads = self.max_threads;
        cfg.steal_poll_ns = self.steal_poll_ns;
        cfg.phase_correction = self.phase_correction;
        cfg
    }

    /// Run the trial on a pooled node. Errors (without running) when the
    /// scenario requires the `trace` feature and this build lacks it.
    pub fn run_pooled(&self, pool: &mut NodePool) -> Result<TrialOutcome, String> {
        #[cfg(not(feature = "trace"))]
        if self.oracles || self.sabotage_fifo.is_some() || self.sabotage_layer.is_some() {
            return Err(format!(
                "scenario `{}` arms oracles/sabotage, which needs a build with `--features trace`",
                self.name
            ));
        }
        if let Workload::Cluster { .. } = self.workload {
            // Cluster runs own a whole fleet, not the caller's single
            // node; a thread-local fleet gives them the same cross-trial
            // arena reuse the node pool gives the other workloads. The
            // engine guarantees pooled == fresh byte for byte.
            thread_local! {
                static FLEET: RefCell<Fleet> = RefCell::new(Fleet::new());
            }
            let cfg = self.cluster_config();
            let out = FLEET.with(|f| nautix_cluster::run(&cfg, &mut f.borrow_mut()));
            return Ok(cluster_trial(&out));
        }
        let node = pool.node(self.node_config());
        #[cfg(feature = "trace")]
        {
            if self.oracles && node.oracles().is_none() {
                node.enable_oracles();
            }
            if let Some(cpu) = self.sabotage_fifo {
                node.set_sabotage_fifo(cpu, true);
            }
            if let Some(cpu) = self.sabotage_layer {
                node.set_sabotage_layer(cpu, true);
            }
        }
        match self.workload {
            Workload::MissRate {
                period_ns,
                slice_ns,
                jobs,
            } => {
                let prog = FnProgram::new(move |_cx, n| {
                    if n == 0 {
                        // One period of phase so the first arrival lands
                        // after the admission call itself has returned.
                        Action::Call(SysCall::ChangeConstraints(Constraints::Periodic {
                            phase: period_ns,
                            period: period_ns,
                            slice: slice_ns,
                        }))
                    } else {
                        // Always-runnable: every job demands its full slice.
                        Action::Compute(100_000)
                    }
                });
                let tid = node.spawn_on(1, "probe", Box::new(prog)).unwrap();
                node.run_for_ns(period_ns.saturating_mul(jobs + 20));
                Ok(outcome(node, tid))
            }
            Workload::FaultMix {
                period_ns,
                slice_pct,
                jobs,
            } => {
                let slice_ns = (period_ns * slice_pct / 100).max(500);
                let probe = FnProgram::new(move |_cx, n| {
                    if n == 0 {
                        Action::Call(SysCall::ChangeConstraints(
                            Constraints::periodic(period_ns, slice_ns)
                                .phase(period_ns)
                                .build(),
                        ))
                    } else {
                        Action::Compute(100_000)
                    }
                });
                let probe_tid = node.spawn_on(1, "probe", Box::new(probe)).unwrap();
                let burst_size = slice_ns;
                let burst_deadline = period_ns.saturating_mul(4);
                let burst = FnProgram::new(move |_cx, n| {
                    if n == 0 {
                        Action::Call(SysCall::ChangeConstraints(
                            Constraints::sporadic(burst_size, burst_deadline).build(),
                        ))
                    } else {
                        Action::Compute(100_000)
                    }
                });
                node.spawn_on(2, "burst", Box::new(burst)).unwrap();
                node.run_for_ns(period_ns.saturating_mul(jobs + 20));
                Ok(outcome(node, probe_tid))
            }
            Workload::Competing {
                period_ns,
                slice_ns,
                jobs,
            } => {
                let spawn_periodic = |node: &mut Node, name, period: Nanos, slice: Nanos| {
                    let prog = FnProgram::new(move |_cx, n| {
                        if n == 0 {
                            Action::Call(SysCall::ChangeConstraints(
                                Constraints::periodic(period, slice).build(),
                            ))
                        } else {
                            Action::Compute(1_000_000)
                        }
                    });
                    node.spawn_on(1, name, Box::new(prog)).unwrap()
                };
                spawn_periodic(node, "slow", period_ns * 5, slice_ns * 5);
                let fast = spawn_periodic(node, "fast", period_ns, slice_ns);
                node.run_for_ns(period_ns.saturating_mul(jobs + 20));
                Ok(outcome(node, fast))
            }
            Workload::Cluster { .. } => unreachable!("handled before node boot"),
            Workload::LayerMix {
                period_ns,
                slice_pct,
                jobs,
            } => {
                let slice_ns = (period_ns * slice_pct / 100).max(500);
                let probe = FnProgram::new(move |_cx, n| {
                    if n == 0 {
                        Action::Call(SysCall::ChangeConstraints(
                            Constraints::periodic(period_ns, slice_ns)
                                .phase(period_ns)
                                .build(),
                        ))
                    } else {
                        Action::Compute(100_000)
                    }
                });
                let probe_tid = node.spawn_on(1, "probe", Box::new(probe)).unwrap();
                // An always-runnable aperiodic hog: its whole demand lands
                // in the background layer, which drains every window.
                let hog = FnProgram::new(move |_cx, _n| Action::Compute(100_000));
                node.spawn_on(1, "hog", Box::new(hog)).unwrap();
                node.run_for_ns(period_ns.saturating_mul(jobs + 20));
                Ok(outcome(node, probe_tid))
            }
        }
    }

    /// Run the trial on a fresh (unpooled) node — or, for a cluster
    /// workload, a fresh fleet.
    pub fn run_fresh(&self) -> Result<TrialOutcome, String> {
        if let Workload::Cluster { .. } = self.workload {
            return Ok(cluster_trial(&nautix_cluster::run_fresh(
                &self.cluster_config(),
            )));
        }
        self.run_pooled(&mut NodePool::new())
    }

    /// [`Scenario::run_pooled`] plus the recording duties the sweep
    /// harnesses want on every trial: stream the delta snapshot to the
    /// installed stats hub, and — when `NAUTIX_REPLAY_DIR` is set — catch
    /// a trial panic (an armed oracle flagging a violation), write this
    /// scenario to `<dir>/<name>.replay`, and re-raise. Without the env
    /// var the trial runs unwrapped, so paper-scale sweeps pay nothing.
    pub fn run_recorded(&self, pool: &mut NodePool) -> Result<TrialOutcome, String> {
        let result = match replay_dir() {
            None => self.run_pooled(pool),
            Some(dir) => match catch_unwind(AssertUnwindSafe(|| self.run_pooled(pool))) {
                Ok(r) => r,
                Err(payload) => {
                    let path = dir.join(format!("{}.replay", self.name));
                    let _ = std::fs::create_dir_all(&dir);
                    match std::fs::write(&path, self.to_replay_string()) {
                        Ok(()) => eprintln!(
                            "nautix: trial `{}` flagged; replay written to {}",
                            self.name,
                            path.display()
                        ),
                        Err(e) => eprintln!(
                            "nautix: trial `{}` flagged; FAILED to write replay {}: {e}",
                            self.name,
                            path.display()
                        ),
                    }
                    resume_unwind(payload)
                }
            },
        };
        if let Ok(out) = &result {
            stream_delta(&out.snapshot);
        }
        result
    }

    /// Canonical text encoding: version header, `key value` lines in
    /// fixed order, `end`. Two scenarios are equal iff their replay
    /// strings are byte-identical.
    pub fn to_replay_string(&self) -> String {
        let m = &self.machine;
        let s = &self.sched;
        let mut t = String::with_capacity(1024);
        t.push_str(REPLAY_HEADER);
        t.push('\n');
        let mut kv = |k: &str, v: String| {
            t.push_str(k);
            t.push(' ');
            t.push_str(&v);
            t.push('\n');
        };
        kv("name", self.name.clone());
        kv("machine.platform", m.platform.encode().to_string());
        kv("machine.cpus", m.n_cpus.to_string());
        kv("machine.timer_mode", m.timer_mode.encode());
        kv("machine.tsc_writable", onoff(m.tsc_writable));
        kv("machine.boot_skew_max", m.boot_skew_max.to_string());
        kv("machine.smi", m.smi.encode());
        kv("machine.faults", m.faults.encode());
        kv("machine.queue", m.queue.label().to_string());
        kv("machine.topology", m.topology.label());
        kv("machine.seed", m.seed.to_string());
        kv("sched.util_limit_ppm", s.util_limit_ppm.to_string());
        kv(
            "sched.sporadic_reserve_ppm",
            s.sporadic_reserve_ppm.to_string(),
        );
        kv(
            "sched.aperiodic_reserve_ppm",
            s.aperiodic_reserve_ppm.to_string(),
        );
        kv(
            "sched.aperiodic_quantum_ns",
            s.aperiodic_quantum_ns.to_string(),
        );
        kv("sched.granularity_ns", s.granularity_ns.to_string());
        kv("sched.min_period_ns", s.min_period_ns.to_string());
        kv("sched.min_slice_ns", s.min_slice_ns.to_string());
        kv("sched.policy", encode_policy(s.policy));
        kv(
            "sched.mode",
            match s.mode {
                SchedMode::Eager => "eager".into(),
                SchedMode::Lazy => "lazy".into(),
            },
        );
        kv("sched.lazy_margin_ns", s.lazy_margin_ns.to_string());
        kv("sched.admission_enabled", onoff(s.admission_enabled));
        kv("sched.work_stealing", onoff(s.work_stealing));
        kv(
            "sched.steal",
            match s.steal {
                StealPolicy::LlcFirst => "llc_first".into(),
                StealPolicy::Uniform => "uniform".into(),
            },
        );
        kv(
            "sched.degrade",
            format!(
                "{}:{}:{}:{}",
                onoff(s.degrade.enabled),
                s.degrade.miss_threshold,
                s.degrade.widen_pct,
                s.degrade.max_widen
            ),
        );
        kv(
            "sched.engine",
            match s.engine {
                AdmissionEngine::Incremental => "incremental".into(),
                AdmissionEngine::Fresh => "fresh".into(),
            },
        );
        kv("sched.layers", s.layers.encode());
        kv(
            "node.laden",
            self.laden
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(","),
        );
        kv("node.calib_rounds", self.calib_rounds.to_string());
        kv("node.max_threads", self.max_threads.to_string());
        kv("node.steal_poll_ns", self.steal_poll_ns.to_string());
        kv("node.phase_correction", onoff(self.phase_correction));
        kv("node.oracles", onoff(self.oracles));
        kv(
            "node.sabotage_fifo",
            match self.sabotage_fifo {
                None => "none".into(),
                Some(cpu) => cpu.to_string(),
            },
        );
        kv(
            "node.sabotage_layer",
            match self.sabotage_layer {
                None => "none".into(),
                Some(cpu) => cpu.to_string(),
            },
        );
        kv("workload", self.workload.encode());
        t.push_str("end\n");
        t
    }

    /// Strict parse of [`Scenario::to_replay_string`] output. Errors on a
    /// wrong version, a missing / reordered key, any malformed value
    /// (including a truncated fault plan or a bad topology string),
    /// truncation before `end`, or trailing garbage.
    pub fn from_replay_string(text: &str) -> Result<Scenario, String> {
        let mut p = Parser::new(text)?;
        let name = p.take("name")?.to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return Err(format!(
                "name: `{name}` must be non-empty [A-Za-z0-9._-] (it becomes a file stem)"
            ));
        }
        let platform = Platform::decode(p.take("machine.platform")?)?;
        let n_cpus: usize = p.num("machine.cpus")?;
        if n_cpus == 0 {
            return Err("machine.cpus: must be >= 1".into());
        }
        let timer_mode = TimerMode::decode(p.take("machine.timer_mode")?)?;
        let tsc_writable = parse_onoff(p.take("machine.tsc_writable")?, "machine.tsc_writable")?;
        let boot_skew_max = p.num("machine.boot_skew_max")?;
        let smi = SmiConfig::decode(p.take("machine.smi")?)?;
        let faults = FaultPlan::decode(p.take("machine.faults")?)?;
        let queue = match p.take("machine.queue")? {
            "heap" => QueueKind::Heap,
            "wheel" => QueueKind::Wheel,
            other => {
                return Err(format!(
                    "machine.queue: expected `heap` or `wheel`, got `{other}`"
                ))
            }
        };
        let topology = Topology::parse(p.take("machine.topology")?)
            .map_err(|e| format!("machine.topology: {e}"))?;
        let seed = p.num("machine.seed")?;
        let machine = MachineConfig {
            platform,
            n_cpus,
            timer_mode,
            tsc_writable,
            boot_skew_max,
            smi,
            faults,
            queue,
            topology,
            seed,
        };
        let sched = SchedConfig {
            util_limit_ppm: p.num("sched.util_limit_ppm")?,
            sporadic_reserve_ppm: p.num("sched.sporadic_reserve_ppm")?,
            aperiodic_reserve_ppm: p.num("sched.aperiodic_reserve_ppm")?,
            aperiodic_quantum_ns: p.num("sched.aperiodic_quantum_ns")?,
            granularity_ns: p.num("sched.granularity_ns")?,
            min_period_ns: p.num("sched.min_period_ns")?,
            min_slice_ns: p.num("sched.min_slice_ns")?,
            policy: decode_policy(p.take("sched.policy")?)?,
            mode: match p.take("sched.mode")? {
                "eager" => SchedMode::Eager,
                "lazy" => SchedMode::Lazy,
                other => {
                    return Err(format!(
                        "sched.mode: expected `eager` or `lazy`, got `{other}`"
                    ))
                }
            },
            lazy_margin_ns: p.num("sched.lazy_margin_ns")?,
            admission_enabled: parse_onoff(
                p.take("sched.admission_enabled")?,
                "sched.admission_enabled",
            )?,
            work_stealing: parse_onoff(p.take("sched.work_stealing")?, "sched.work_stealing")?,
            steal: match p.take("sched.steal")? {
                "llc_first" => StealPolicy::LlcFirst,
                "uniform" => StealPolicy::Uniform,
                other => {
                    return Err(format!(
                        "sched.steal: expected `llc_first` or `uniform`, got `{other}`"
                    ))
                }
            },
            degrade: decode_degrade(p.take("sched.degrade")?)?,
            engine: match p.take("sched.engine")? {
                "incremental" => AdmissionEngine::Incremental,
                "fresh" => AdmissionEngine::Fresh,
                other => {
                    return Err(format!(
                        "sched.engine: expected `incremental` or `fresh`, got `{other}`"
                    ))
                }
            },
            layers: LayerTable::decode(p.take("sched.layers")?)
                .map_err(|e| format!("sched.layers: {e}"))?,
        };
        let laden_raw = p.take("node.laden")?;
        let laden = if laden_raw.is_empty() {
            Vec::new()
        } else {
            laden_raw
                .split(',')
                .map(|c| {
                    c.parse::<CpuId>()
                        .map_err(|_| format!("node.laden: `{c}` is not a CPU index"))
                })
                .collect::<Result<Vec<_>, _>>()?
        };
        let calib_rounds = p.num("node.calib_rounds")?;
        let max_threads = p.num("node.max_threads")?;
        let steal_poll_ns = p.num("node.steal_poll_ns")?;
        let phase_correction =
            parse_onoff(p.take("node.phase_correction")?, "node.phase_correction")?;
        let oracles = parse_onoff(p.take("node.oracles")?, "node.oracles")?;
        let sabotage_fifo = match p.take("node.sabotage_fifo")? {
            "none" => None,
            v => Some(v.parse::<CpuId>().map_err(|_| {
                format!("node.sabotage_fifo: expected `none` or a CPU index, got `{v}`")
            })?),
        };
        let sabotage_layer = match p.take("node.sabotage_layer")? {
            "none" => None,
            v => Some(v.parse::<CpuId>().map_err(|_| {
                format!("node.sabotage_layer: expected `none` or a CPU index, got `{v}`")
            })?),
        };
        let workload = Workload::decode(p.take("workload")?)?;
        p.finish()?;
        Ok(Scenario {
            name,
            machine,
            sched,
            laden,
            calib_rounds,
            max_threads,
            steal_poll_ns,
            phase_correction,
            oracles,
            sabotage_fifo,
            sabotage_layer,
            workload,
        })
    }
}

/// Collect the trial outcome from a finished node. `tid` is the probe.
fn outcome(node: &mut Node, tid: nautix_kernel::ThreadId) -> TrialOutcome {
    let st = node.thread_state(tid);
    let mt = st.stats.miss_time_summary();
    let jobs = st.stats.met + st.stats.missed;
    let miss_rate = st.stats.miss_rate();
    TrialOutcome {
        events: node.machine.events_processed(),
        snapshot: node.stats_snapshot(),
        jobs,
        miss_rate,
        miss_mean_ns: mt.mean,
        miss_std_ns: mt.std_dev,
        faults: node.machine.fault_stats(),
        degrade: node.degrade_stats(),
    }
}

/// A cluster run folded into the shape every replay consumer expects.
/// The probe-thread fields (jobs, miss stats) have no cluster analogue
/// and stay zero; the snapshot's `cluster_*` fields carry the outcome.
fn cluster_trial(out: &ClusterOutcome) -> TrialOutcome {
    TrialOutcome {
        events: out.events,
        snapshot: out.snapshot,
        jobs: 0,
        miss_rate: 0.0,
        miss_mean_ns: 0.0,
        miss_std_ns: 0.0,
        faults: FaultStats::default(),
        degrade: DegradeStats::default(),
    }
}

/// Where [`Scenario::run_recorded`] writes replay files for flagged
/// trials ([`HarnessConfig`]'s `replay_dir`, from `NAUTIX_REPLAY_DIR`).
/// Unset disables emission. Read per call so test-scoped overrides are
/// observed.
fn replay_dir() -> Option<PathBuf> {
    HarnessConfig::from_env().replay_dir
}

fn onoff(b: bool) -> String {
    if b { "on" } else { "off" }.into()
}

fn parse_onoff(s: &str, what: &str) -> Result<bool, String> {
    match s {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(format!("{what}: expected `on` or `off`, got `{s}`")),
    }
}

fn encode_policy(p: AdmissionPolicy) -> String {
    match p {
        AdmissionPolicy::EdfBound => "edf_bound".into(),
        AdmissionPolicy::RmBound => "rm_bound".into(),
        AdmissionPolicy::HyperperiodSim {
            overhead_ns,
            window_cap_ns,
        } => format!("hyperperiod_sim:{overhead_ns}:{window_cap_ns}"),
    }
}

fn decode_policy(s: &str) -> Result<AdmissionPolicy, String> {
    match s {
        "edf_bound" => return Ok(AdmissionPolicy::EdfBound),
        "rm_bound" => return Ok(AdmissionPolicy::RmBound),
        _ => {}
    }
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() == 3 && parts[0] == "hyperperiod_sim" {
        let n = |v: &str, what: &str| -> Result<u64, String> {
            v.parse()
                .map_err(|_| format!("sched.policy {what}: `{v}` is not a u64"))
        };
        return Ok(AdmissionPolicy::HyperperiodSim {
            overhead_ns: n(parts[1], "overhead")?,
            window_cap_ns: n(parts[2], "window cap")?,
        });
    }
    Err(format!(
        "sched.policy: expected `edf_bound`, `rm_bound` or `hyperperiod_sim:<o>:<w>`, got `{s}`"
    ))
}

fn decode_degrade(s: &str) -> Result<DegradePolicy, String> {
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() != 4 {
        return Err(format!(
            "sched.degrade: expected `on|off:<threshold>:<widen_pct>:<max_widen>`, got `{s}`"
        ));
    }
    let n = |v: &str, what: &str| -> Result<u32, String> {
        v.parse()
            .map_err(|_| format!("sched.degrade {what}: `{v}` is not a u32"))
    };
    Ok(DegradePolicy {
        enabled: parse_onoff(parts[0], "sched.degrade")?,
        miss_threshold: n(parts[1], "threshold")?,
        widen_pct: n(parts[2], "widen_pct")?,
        max_widen: n(parts[3], "max_widen")?,
    })
}

/// Ordered `key value` line reader shared by the strict parse path.
struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Result<Parser<'a>, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty replay text")?;
        if header != REPLAY_HEADER {
            return Err(format!(
                "unknown replay version: expected `{REPLAY_HEADER}`, got `{header}`"
            ));
        }
        Ok(Parser { lines })
    }

    /// The value of the next line, which must carry exactly `key`.
    fn take(&mut self, key: &str) -> Result<&'a str, String> {
        let (i, line) = self
            .lines
            .next()
            .ok_or_else(|| format!("truncated replay: missing `{key}`"))?;
        let (k, v) = line
            .split_once(' ')
            .ok_or_else(|| format!("line {}: expected `{key} <value>`, got `{line}`", i + 1))?;
        if k != key {
            return Err(format!(
                "line {}: expected key `{key}`, got `{k}` (keys are ordered)",
                i + 1
            ));
        }
        Ok(v)
    }

    /// [`Parser::take`] plus a numeric parse.
    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        let v = self.take(key)?;
        v.parse()
            .map_err(|_| format!("{key}: `{v}` is not a valid number"))
    }

    /// Require the `end` line and nothing but blank lines after it.
    fn finish(mut self) -> Result<(), String> {
        match self.lines.next() {
            Some((_, "end")) => {}
            Some((i, line)) => return Err(format!("line {}: expected `end`, got `{line}`", i + 1)),
            None => return Err("truncated replay: missing `end`".into()),
        }
        if let Some((i, line)) = self.lines.find(|(_, l)| !l.trim().is_empty()) {
            return Err(format!(
                "line {}: trailing garbage after `end`: `{line}`",
                i + 1
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missrate_scenario_round_trips() {
        let sc = Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 50, 5);
        let text = sc.to_replay_string();
        let back = Scenario::from_replay_string(&text).unwrap();
        assert_eq!(sc, back);
        assert_eq!(back.to_replay_string(), text, "encoding must be canonical");
    }

    #[test]
    fn fault_scenario_round_trips_with_every_lane() {
        let sc = Scenario::fault_mix(1.0, 100_000, 60, 200, 7);
        assert!(sc.machine.faults.enabled());
        assert!(sc.sched.degrade.enabled);
        let back = Scenario::from_replay_string(&sc.to_replay_string()).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn scenario_matches_direct_construction() {
        // The refactoring contract: the scenario's NodeConfig is exactly
        // what the sweeps used to build inline.
        let sc = Scenario::missrate(Platform::R415, 4_000, 400, 100, 5);
        let cfg = sc.node_config();
        assert_eq!(cfg.machine.n_cpus, 2);
        assert!(!cfg.sched.admission_enabled);
        assert_eq!(cfg.sched.granularity_ns, 1);
        assert_eq!(cfg.laden, vec![0]);
        assert_eq!(cfg.calib_rounds, 16);
        let sc2 = Scenario::fault_mix(0.0, 1_000_000, 30, 40, 7);
        assert_eq!(sc2.machine.faults, FaultPlan::disabled());
        assert_eq!(sc2.sched.degrade.miss_threshold, 2);
    }

    #[test]
    fn replay_reproduces_the_trial() {
        let sc = Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 30, 5);
        let a = sc.run_fresh().unwrap();
        let b = Scenario::from_replay_string(&sc.to_replay_string())
            .unwrap()
            .run_fresh()
            .unwrap();
        assert_eq!(a, b);
        assert!(a.jobs >= 20);
        assert_eq!(a.snapshot.trials, 1);
        assert_eq!(a.snapshot.events, a.events);
    }

    #[test]
    fn parse_rejects_unknown_version_and_truncation() {
        let t = Scenario::missrate(Platform::Phi, 100_000, 30_000, 10, 1).to_replay_string();
        let e = Scenario::from_replay_string(&t.replace(REPLAY_HEADER, "nautix-replay v6"))
            .unwrap_err();
        assert!(e.contains("unknown replay version"), "{e}");
        let cut: String = t.lines().take(8).map(|l| format!("{l}\n")).collect();
        assert!(Scenario::from_replay_string(&cut).is_err());
        let no_end = t.strip_suffix("end\n").unwrap();
        let e = Scenario::from_replay_string(no_end).unwrap_err();
        assert!(e.contains("missing `end`"), "{e}");
    }

    #[test]
    fn parse_rejects_bad_fields_instead_of_defaulting() {
        let t = Scenario::fault_mix(0.5, 100_000, 60, 50, 11).to_replay_string();
        // Truncated fault plan: drop the last `;`-field of the plan line.
        let plan_line = t
            .lines()
            .find(|l| l.starts_with("machine.faults "))
            .unwrap();
        let truncated_plan = plan_line.rsplit_once(';').unwrap().0;
        let e = Scenario::from_replay_string(&t.replace(plan_line, truncated_plan)).unwrap_err();
        assert!(e.contains("fault plan"), "{e}");
        // Bad topology string.
        let e = Scenario::from_replay_string(
            &t.replace("machine.topology flat", "machine.topology 2×4"),
        )
        .unwrap_err();
        assert!(e.contains("machine.topology"), "{e}");
        // Reordered keys.
        let swapped = t.replacen("machine.cpus", "machine.seed", 1);
        assert!(Scenario::from_replay_string(&swapped).is_err());
        // Trailing garbage.
        assert!(Scenario::from_replay_string(&format!("{t}extra\n")).is_err());
    }

    #[test]
    fn workload_codec_is_strict() {
        for w in [
            Workload::MissRate {
                period_ns: 10_000,
                slice_ns: 7_000,
                jobs: 100,
            },
            Workload::FaultMix {
                period_ns: 30_000,
                slice_pct: 60,
                jobs: 150,
            },
            Workload::Competing {
                period_ns: 200_000,
                slice_ns: 20_000,
                jobs: 40,
            },
        ] {
            assert_eq!(Workload::decode(&w.encode()).unwrap(), w);
        }
        for strategy in PlacementStrategy::ALL {
            let w = Workload::Cluster {
                shards: 16,
                tenants: 1_000,
                strategy,
            };
            assert_eq!(Workload::decode(&w.encode()).unwrap(), w);
        }
        assert!(Workload::decode("missrate:10:7").is_err());
        assert!(Workload::decode("bsp:1:2:3").is_err());
        assert!(Workload::decode("missrate:a:b:c").is_err());
        assert!(Workload::decode("cluster:4:100:worst_fit").is_err());
        assert!(Workload::decode("cluster:4:100").is_err());
        let w = Workload::LayerMix {
            period_ns: 1_000_000,
            slice_pct: 70,
            jobs: 50,
        };
        assert_eq!(Workload::decode(&w.encode()).unwrap(), w);
        assert!(Workload::decode("layer_mix:1:2").is_err());
        assert!(Workload::decode("layer_mix:1:2:x").is_err());
    }

    #[test]
    fn layer_scenario_round_trips_and_replays() {
        let sc = Scenario::layer_starve(1_000_000, 70, 30, 9);
        assert_eq!(sc.sched.layers.count(), 3);
        let text = sc.to_replay_string();
        assert!(text.contains("sched.layers 750000:0,100000:0,100000:0;10000000;0,1,2"));
        let back = Scenario::from_replay_string(&text).unwrap();
        assert_eq!(sc, back);
        assert_eq!(back.to_replay_string(), text, "encoding must be canonical");
        let a = sc.run_fresh().unwrap();
        let b = back.run_pooled(&mut NodePool::new()).unwrap();
        assert_eq!(a, b, "pooled replay must match fresh");
        assert!(
            a.snapshot.layer_throttles > 0,
            "the hog's background layer must throttle"
        );
        assert!(a.snapshot.layer_replenishes > 0);
    }

    #[test]
    fn cluster_scenario_round_trips_and_replays() {
        let sc = Scenario::cluster(3, 8, 150, PlacementStrategy::PowerOfTwo, 21);
        let text = sc.to_replay_string();
        let back = Scenario::from_replay_string(&text).unwrap();
        assert_eq!(sc, back);
        assert_eq!(back.to_replay_string(), text, "encoding must be canonical");
        let a = sc.run_fresh().unwrap();
        let b = back.run_pooled(&mut NodePool::new()).unwrap();
        assert_eq!(a, b, "pooled fleet replay must match fresh");
        assert_eq!(a.snapshot.cluster_decisions, 150);
        assert!(a.snapshot.cluster_placed > 0);
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn oracle_scenarios_error_without_trace() {
        let mut sc = Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 10, 5);
        sc.oracles = true;
        let e = sc.run_fresh().unwrap_err();
        assert!(e.contains("trace"), "{e}");
    }
}
