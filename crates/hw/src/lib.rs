//! Deterministic model of an x64 shared-memory node.
//!
//! This crate supplies the hardware the paper's scheduler runs on — the
//! parts of a Xeon Phi / Opteron box a kernel can see and touch:
//!
//! * per-CPU **TSCs** with boot-time phase skew and optional write support
//!   ([`tsc`]),
//! * per-CPU **APICs** with one-shot timers (tick quantization or TSC
//!   deadline) and processor-priority interrupt filtering ([`apic`]),
//! * **IPIs** and steerable external device interrupts,
//! * **SMIs** that stall every CPU while clocks keep running — the "missing
//!   time" of §3.6 ([`smi`]),
//! * composable **fault lanes** beyond SMIs — kick-IPI loss and delay,
//!   one-shot overshoot, frequency dips, spurious device interrupts, and
//!   single-CPU stalls ([`fault`]),
//! * a **GPIO port** with scope-style capture for external verification
//!   ([`gpio`]),
//! * a calibrated **cycle-cost model** for kernel paths ([`cost`]),
//!
//! all glued together by the event-driven [`Machine`].

pub mod apic;
pub mod cost;
pub mod fault;
pub mod gpio;
pub mod machine;
pub mod replay;
pub mod smi;
pub mod timer;
pub mod topology;
pub mod tsc;

pub use apic::{vector_priority, Apic, TimerMode, VEC_DEVICE_BASE, VEC_KICK, VEC_TIMER};
pub use cost::{Cost, CostModel};
pub use fault::{FaultPattern, FaultPlan, FaultStats};
pub use gpio::{scope, Gpio, GpioSample};
pub use machine::{CpuId, Machine, MachineConfig, MachineEvent, Platform};
pub use nautix_des::QueueKind;
pub use smi::{SmiConfig, SmiPattern, SmiStats};
pub use timer::TimerSlots;
pub use topology::{shifted_victim, Distance, StealStages, TopoMap, Topology};
pub use tsc::Tsc;
