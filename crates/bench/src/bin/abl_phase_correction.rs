//! Ablation: phase correction on/off (§4.4).

use nautix_bench::{banner, f, groupsync, out_dir, write_csv};

fn main() {
    banner("Ablation: phase correction's effect on group dispatch spread");
    let mut rows = Vec::new();
    println!("n,phase_correction,mean_spread_cycles,std_cycles,max_cycles");
    for n in [8usize, 16, 32] {
        for corrected in [false, true] {
            let s = groupsync::measure(n, 200, corrected, 21);
            println!(
                "{},{},{},{},{}",
                n,
                corrected,
                f(s.summary.mean),
                f(s.summary.std_dev),
                s.summary.max
            );
            rows.push(vec![
                n.to_string(),
                corrected.to_string(),
                f(s.summary.mean),
                f(s.summary.std_dev),
                s.summary.max.to_string(),
            ]);
        }
    }
    write_csv(
        &out_dir().join("abl_phase_correction.csv"),
        &["n", "phase_correction", "mean_spread", "std", "max"],
        rows,
    );
    println!("wrote {:?}", out_dir().join("abl_phase_correction.csv"));
}
