//! Phase correction (§4.4).
//!
//! Three effects skew the admission instants of a gang's threads even when
//! their constraints are identical: admission runs in aperiodic context
//! (delayable), barriers release threads one at a time, and wall clocks
//! disagree by the calibration residual. The paper's remedy adjusts the
//! *phase* φ of each thread by its release order from the final group
//! barrier: "the *i*th thread to be released is then given a corrected
//! phase φᵢ = φ + (n − i)·δ where δ is the measured per-thread delay in
//! departing the barrier."
//!
//! With that correction, thread i's first arrival lands at
//! `departure_i + φ + (n − i)δ ≈ departure_last + φ`, aligning every
//! member's first arrival to the *last* departure — the only instant all
//! of them have provably passed.

use nautix_des::Nanos;
use nautix_kernel::Constraints;

/// The corrected phase for the thread released `order`-th (0-based) out of
/// `n`, given the measured per-thread departure delay `delta_ns`.
pub fn corrected_phase(base_phase: Nanos, order: usize, n: usize, delta_ns: Nanos) -> Nanos {
    debug_assert!(order < n);
    base_phase + (n - order) as u64 * delta_ns
}

/// Apply phase correction to a constraint descriptor.
pub fn correct_constraints(c: Constraints, order: usize, n: usize, delta_ns: Nanos) -> Constraints {
    match c.phase() {
        // Unchecked on purpose: correction runs on an already-admitted
        // descriptor and must not panic; if the enlarged phase pushes a
        // sporadic burst past its deadline, re-admission rejects it.
        Some(phase) => c
            .with_phase(corrected_phase(phase, order, n, delta_ns))
            .build_unchecked(),
        None => c,
    }
}

/// Phase-correct a whole team at once: the slot-`i` member of an
/// `n`-member team receives [`correct_constraints`]`(c, i, n, delta_ns)`.
/// The batched form of the per-thread correction, used by team admission
/// (`Node::admit_team` / the `GroupAdmitTeam` syscall), where one
/// completer corrects every member inside a single ledger transaction.
pub fn correct_team(c: Constraints, n: usize, delta_ns: Nanos) -> Vec<Constraints> {
    (0..n)
        .map(|i| correct_constraints(c, i, n, delta_ns))
        .collect()
}

/// Estimate δ from observed departure offsets (nanoseconds after the
/// completion instant, indexed by release order): the mean per-order
/// increment, i.e. the slope of a line through the first and last points.
pub fn estimate_delta(departure_offsets: &[Nanos]) -> Nanos {
    if departure_offsets.len() < 2 {
        return 0;
    }
    let n = departure_offsets.len() as u64;
    let span = departure_offsets
        .last()
        .unwrap()
        .saturating_sub(departure_offsets[0]);
    span / (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_release_gets_smaller_phase() {
        let n = 8;
        let d = 100;
        let phases: Vec<_> = (0..n).map(|i| corrected_phase(1000, i, n, d)).collect();
        for w in phases.windows(2) {
            assert_eq!(w[0] - w[1], d);
        }
        assert_eq!(phases[0], 1000 + 8 * d);
        assert_eq!(phases[n - 1], 1000 + d);
    }

    #[test]
    fn corrected_arrivals_align() {
        // Thread i departs the barrier at t = i*δ; its first arrival is at
        // departure + corrected phase. All arrivals must coincide.
        let n = 16;
        let d = 250u64;
        let arrivals: Vec<u64> = (0..n)
            .map(|i| i as u64 * d + corrected_phase(0, i, n, d))
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn aperiodic_constraints_are_untouched() {
        let c = Constraints::default_aperiodic();
        assert_eq!(correct_constraints(c, 0, 4, 100), c);
    }

    #[test]
    fn periodic_phase_is_rewritten() {
        let c = Constraints::Periodic {
            phase: 500,
            period: 10_000,
            slice: 5_000,
        };
        let got = correct_constraints(c, 2, 4, 100);
        assert_eq!(
            got,
            Constraints::Periodic {
                phase: 500 + 2 * 100,
                period: 10_000,
                slice: 5_000
            }
        );
    }

    #[test]
    fn team_correction_matches_per_member_correction() {
        let c = Constraints::Periodic {
            phase: 500,
            period: 10_000,
            slice: 5_000,
        };
        let team = correct_team(c, 4, 100);
        assert_eq!(team.len(), 4);
        for (i, got) in team.iter().enumerate() {
            assert_eq!(*got, correct_constraints(c, i, 4, 100));
        }
        // The corrected first arrivals of a team departing at i·δ align.
        let arrivals: Vec<u64> = team
            .iter()
            .enumerate()
            .map(|(i, c)| i as u64 * 100 + c.phase().unwrap())
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn delta_estimation_recovers_slope() {
        let offsets: Vec<u64> = (0..10).map(|i| 40 + i * 130).collect();
        assert_eq!(estimate_delta(&offsets), 130);
        assert_eq!(estimate_delta(&[5]), 0);
        assert_eq!(estimate_delta(&[]), 0);
    }
}
