//! Per-CPU advanced programmable interrupt controller (APIC) model.
//!
//! The scheduler relies on exactly three APIC facilities (§3.3, §3.5):
//!
//! 1. the **one-shot timer**, programmed on every scheduler exit ("tickless"
//!    operation). In classic mode the countdown is quantized to APIC timer
//!    ticks; the boot-time calibration must round *conservatively* so a
//!    resolution mismatch fires early, never late. Processors with **TSC
//!    deadline mode** take an absolute cycle count and avoid the conversion.
//! 2. the **processor priority** (TPR): interrupts with vector priority at
//!    or below the TPR are held pending, which is how the scheduler steers
//!    device interrupts away from hard real-time threads.
//! 3. **IPIs** for cross-CPU kicks.
//!
//! Vector priority follows x86: `priority = vector >> 4`.

use nautix_des::{Cycles, Freq, Nanos};

/// Scheduling-related interrupt vectors (priority class 14, like a high
/// vector on real hardware).
pub const VEC_TIMER: u8 = 0xEC;
/// The cross-CPU scheduler "kick" IPI (§3.4).
pub const VEC_KICK: u8 = 0xEA;
/// Base vector for external device interrupts (priority classes 4..8).
pub const VEC_DEVICE_BASE: u8 = 0x40;

/// x86 interrupt priority class of a vector.
pub fn vector_priority(vector: u8) -> u8 {
    vector >> 4
}

/// How the one-shot timer deadline is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerMode {
    /// Classic APIC one-shot countdown with tick quantization.
    OneShot {
        /// Duration of one APIC timer tick in bus-clock terms, expressed in
        /// core cycles. The KNL's APIC timer runs much slower than the core
        /// clock, making quantization visible at 10 µs constraints.
        tick_cycles: Cycles,
    },
    /// TSC deadline mode: exact target cycle count ("some Intel
    /// processors", §3.3).
    TscDeadline,
}

impl TimerMode {
    /// Convert a desired relative delay to the *actual* hardware delay in
    /// cycles, rounding conservatively (never later than requested, except
    /// that a delay shorter than one tick still takes one tick — hardware
    /// cannot fire in the past).
    pub fn quantize(&self, delay_cycles: Cycles) -> Cycles {
        match *self {
            TimerMode::OneShot { tick_cycles } => {
                let ticks = delay_cycles / tick_cycles;
                if ticks == 0 {
                    tick_cycles
                } else {
                    ticks * tick_cycles
                }
            }
            TimerMode::TscDeadline => delay_cycles.max(1),
        }
    }
}

/// One CPU's APIC state: timer mode, processor priority, pending vectors.
///
/// The one-shot countdown itself lives in the machine-level
/// [`TimerSlots`](crate::timer::TimerSlots) array — one pending deadline
/// per CPU, re-armed in place — so the APIC model carries no per-programming
/// state and re-programming cannot leave stale events behind.
#[derive(Debug)]
pub struct Apic {
    mode: TimerMode,
    /// Task priority register: vectors with class <= tpr are blocked.
    tpr: u8,
    /// Pending (raised but masked) vectors, one bit each.
    pending: [u64; 4],
}

impl Apic {
    /// A fresh APIC in the given timer mode, TPR 0 (nothing masked).
    pub fn new(mode: TimerMode) -> Self {
        Apic {
            mode,
            tpr: 0,
            pending: [0; 4],
        }
    }

    /// The timer mode.
    pub fn mode(&self) -> TimerMode {
        self.mode
    }

    /// Current task priority register value (0..=15).
    pub fn tpr(&self) -> u8 {
        self.tpr
    }

    /// Set the task priority register. Returns the vectors that become
    /// deliverable as a result (and removes them from the pending set).
    ///
    /// The scheduler writes the TPR on every interrupt entry and exit, so
    /// this is event-path code: with nothing pending (the common case) it
    /// is four word compares and no allocation — `Vec::new` holds no heap.
    /// Only actually-pending vectors are visited otherwise.
    pub fn set_tpr(&mut self, tpr: u8) -> Vec<u8> {
        assert!(tpr < 16);
        self.tpr = tpr;
        if self.pending == [0; 4] {
            return Vec::new();
        }
        let mut released = Vec::new();
        for (w, word) in self.pending.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as u8;
                bits &= bits - 1;
                let v = (w as u8) << 6 | b;
                if vector_priority(v) > tpr {
                    *word &= !(1u64 << b);
                    released.push(v);
                }
            }
        }
        // Higher-priority vectors first, matching hardware delivery order
        // (stable sort: ascending vector order within a priority class).
        released.sort_by_key(|&v| std::cmp::Reverse(vector_priority(v)));
        released
    }

    /// Whether the TPR blocks delivery of `vector`.
    pub fn blocks(&self, vector: u8) -> bool {
        vector_priority(vector) <= self.tpr
    }

    /// Record a blocked vector as pending.
    pub fn set_pending(&mut self, vector: u8) {
        self.pending[(vector >> 6) as usize] |= 1u64 << (vector & 63);
    }

    /// Whether `vector` is pending.
    pub fn is_pending(&self, vector: u8) -> bool {
        self.pending[(vector >> 6) as usize] & (1u64 << (vector & 63)) != 0
    }
}

/// Boot-time timer calibration: derive the tick length from nominal APIC
/// and core frequencies, as Nautilus does when it cross-calibrates the APIC
/// timer, the cycle counter, and the nanosecond granularity (§3.3).
pub fn calibrate_tick_cycles(core: Freq, apic_timer: Freq, divider: u32) -> Cycles {
    assert!(divider.is_power_of_two() && divider <= 128);
    // cycles per APIC tick = core_khz * divider / apic_khz, rounded down so
    // the modeled countdown is conservative.
    (core.khz() as u128 * divider as u128 / apic_timer.khz() as u128) as u64
}

/// Convenience: nanoseconds to a conservative cycle delay at `freq`, then
/// quantized by `mode`. This is the path the scheduler uses when it exits.
pub fn ns_to_hw_delay(freq: Freq, mode: TimerMode, delay_ns: Nanos) -> Cycles {
    mode.quantize(freq.ns_to_cycles(delay_ns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_priorities() {
        assert_eq!(vector_priority(VEC_TIMER), 14);
        assert_eq!(vector_priority(VEC_KICK), 14);
        assert_eq!(vector_priority(VEC_DEVICE_BASE), 4);
    }

    #[test]
    fn oneshot_quantizes_conservatively() {
        let mode = TimerMode::OneShot { tick_cycles: 100 };
        assert_eq!(mode.quantize(250), 200); // early, never late
        assert_eq!(mode.quantize(200), 200); // exact passes through
        assert_eq!(mode.quantize(99), 100); // sub-tick takes one tick
        assert_eq!(mode.quantize(0), 100);
    }

    #[test]
    fn tsc_deadline_is_exact() {
        assert_eq!(TimerMode::TscDeadline.quantize(12345), 12345);
        assert_eq!(TimerMode::TscDeadline.quantize(0), 1);
    }

    #[test]
    fn tpr_masks_and_releases() {
        let mut a = Apic::new(TimerMode::TscDeadline);
        a.set_tpr(13); // hard-RT setting: only classes 14/15 get through
        assert!(a.blocks(VEC_DEVICE_BASE));
        assert!(!a.blocks(VEC_TIMER));
        a.set_pending(VEC_DEVICE_BASE);
        a.set_pending(VEC_DEVICE_BASE + 0x10);
        assert!(a.is_pending(VEC_DEVICE_BASE));
        let released = a.set_tpr(0);
        // Higher priority class first.
        assert_eq!(released, vec![VEC_DEVICE_BASE + 0x10, VEC_DEVICE_BASE]);
        assert!(!a.is_pending(VEC_DEVICE_BASE));
    }

    #[test]
    fn calibration_divides_clocks() {
        let core = Freq::from_mhz(1300);
        let bus = Freq::from_mhz(100);
        assert_eq!(calibrate_tick_cycles(core, bus, 1), 13);
        assert_eq!(calibrate_tick_cycles(core, bus, 16), 208);
    }

    #[test]
    fn ns_to_hw_delay_composes_conversion_and_quantization() {
        let f = Freq::phi();
        let mode = TimerMode::OneShot { tick_cycles: 13 };
        // 10 µs = 13_000 cycles = exactly 1000 ticks.
        assert_eq!(ns_to_hw_delay(f, mode, 10_000), 13_000);
        // 10.005 µs rounds down to the same 1000-tick countdown.
        assert_eq!(ns_to_hw_delay(f, mode, 10_005), 13_000);
    }

    #[test]
    fn pending_bitmap_covers_all_vectors() {
        let mut a = Apic::new(TimerMode::TscDeadline);
        for v in [0u8, 63, 64, 127, 128, 191, 192, 255] {
            a.set_pending(v);
            assert!(a.is_pending(v));
        }
    }
}
