//! The BSP workload generator and runner.

use nautix_des::Nanos;
use nautix_hw::CpuId;
use nautix_kernel::{Action, Constraints, GroupId, Program, ResumeCx, SysCall, SysResult};
use nautix_rt::{Node, NodeConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// How the benchmark is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BspMode {
    /// Non-real-time round-robin scheduling (the paper's aperiodic
    /// baseline, 100% utilization). Barriers are required for correctness.
    Aperiodic,
    /// Gang-scheduled hard real-time group with the given periodic
    /// constraints (admitted via group admission control with phase
    /// correction).
    RtGroup {
        /// Period τ in ns.
        period: Nanos,
        /// Slice σ in ns.
        slice: Nanos,
    },
}

/// Benchmark parameters (§6.1).
#[derive(Debug, Clone, Copy)]
pub struct BspParams {
    /// Number of CPUs used; thread *i* runs on CPU *i + 1* (CPU 0 stays
    /// in the interrupt-laden partition, as in the paper's 255-CPU runs).
    pub p: usize,
    /// Elements of the domain local to each CPU.
    pub ne: u64,
    /// Computations per element per iteration.
    pub nc: u64,
    /// Remote writes per iteration (ring pattern).
    pub nw: u64,
    /// Iterations.
    pub iters: u64,
    /// Whether `optional_barrier()` is executed each iteration.
    pub barrier: bool,
    /// Scheduling mode.
    pub mode: BspMode,
    /// Per-thread compute imbalance in ppm: thread *i* computes
    /// `(1 + i/(P-1) * imbalance)` times the base work. Zero models the
    /// paper's "fully balanced" benchmark (§6.4) — the property barrier
    /// removal depends on; nonzero values let experiments measure how
    /// imbalance erodes barrier-free lock-step.
    pub imbalance_ppm: u64,
}

impl BspParams {
    /// The paper's "coarsest granularity" shape, scaled to run quickly:
    /// compute dominates the barrier.
    pub fn coarse(p: usize, iters: u64) -> Self {
        BspParams {
            p,
            ne: 2048,
            nc: 16,
            nw: 16,
            iters,
            barrier: true,
            mode: BspMode::Aperiodic,
            imbalance_ppm: 0,
        }
    }

    /// The paper's "finest granularity" shape: per-iteration work is
    /// comparable to the barrier and scheduling costs.
    pub fn fine(p: usize, iters: u64) -> Self {
        BspParams {
            p,
            ne: 64,
            nc: 4,
            nw: 8,
            iters,
            barrier: true,
            mode: BspMode::Aperiodic,
            imbalance_ppm: 0,
        }
    }

    /// Set the scheduling mode.
    pub fn with_mode(mut self, mode: BspMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enable/disable the optional barrier.
    pub fn with_barrier(mut self, barrier: bool) -> Self {
        self.barrier = barrier;
        self
    }

    /// Set the per-thread compute imbalance.
    pub fn with_imbalance_ppm(mut self, ppm: u64) -> Self {
        self.imbalance_ppm = ppm;
        self
    }
}

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BspResult {
    /// Per-thread execution time (ns) from successful admission (or start
    /// in aperiodic mode) to completing the last iteration.
    pub per_thread_ns: Vec<Nanos>,
    /// The benchmark's execution time: the slowest thread.
    pub max_ns: Nanos,
    /// Mean thread execution time.
    pub mean_ns: f64,
    /// Halo reads that observed a *stale* value (writer behind by more
    /// than one iteration).
    pub stale_reads: u64,
    /// Halo reads that observed a *future* value (writer overwrote data
    /// before it was consumed).
    pub torn_reads: u64,
    /// Deadline misses across all threads (RT mode).
    pub misses: u64,
    /// Whether group admission succeeded (always true in aperiodic mode).
    pub admitted: bool,
    /// Simulated machine events processed during the run (throughput
    /// instrumentation; populated by [`run_bsp`], zero from bare
    /// [`collect_bsp`] on a shared node).
    pub events: u64,
}

impl BspResult {
    /// Total synchronization violations.
    pub fn violations(&self) -> u64 {
        self.stale_reads + self.torn_reads
    }
}

/// Shared benchmark state across the P threads.
///
/// Halo data is double-buffered, as a correct single-barrier BSP code must
/// be: the writer of iteration k targets buffer `k % 2`, the reader of
/// iteration k consumes buffer `(k-1) % 2` at the *end* of its compute.
///
/// `optional_barrier()` is the benchmark's own **spin barrier** (a
/// sense-reversing counter in shared memory), exactly as an application
/// would write it: spinning threads keep consuming their slice, so under
/// real-time constraints a barrier wait burns guaranteed CPU time — the
/// cost the paper's barrier-removal experiment eliminates.
struct Shared {
    /// `tags[i][b][e]`: iteration number last written into thread i's halo
    /// buffer b, element e, by its ring predecessor.
    tags: Vec<[Vec<i64>; 2]>,
    stale: u64,
    torn: u64,
    done_ns: Vec<Option<(Nanos, Nanos)>>, // (start, end) per thread
    admit_failed: bool,
    /// Spin-barrier arrival counter.
    barrier_count: usize,
    /// Spin-barrier sense flag.
    barrier_sense: bool,
}

enum Step {
    Join,
    /// Poll the member count until all P threads have joined: group
    /// admission requires settled membership (the paper's threads all
    /// join before the collective `nk_group_sched_change_constraints`).
    Settle,
    CheckSettle,
    Admit,
    AwaitAdmit,
    StartClock,
    Compute(u64),
    Communicate(u64),
    Barrier(u64),
    /// Spinning in the application barrier with the given local sense.
    BarrierSpin(u64, bool),
    EndClock,
    Done,
}

/// One BSP worker thread.
struct BspThread {
    idx: usize,
    params: BspParams,
    gid: GroupId,
    shared: Rc<RefCell<Shared>>,
    step: Step,
    compute_cycles: u64,
    write_cycles: u64,
    /// Cost of one contended RMW (barrier arrival).
    rmw_cycles: u64,
    /// Cost of one spin-wait check.
    spin_cycles: u64,
    start_ns: Nanos,
}

impl BspThread {
    /// Consume iteration `iter - 1`'s halo (at the end of iteration
    /// `iter`'s compute): buffer `(iter-1) % 2` must carry exactly tag
    /// `iter - 1`. Older means the writer fell behind the lock-step
    /// (stale); newer means the writer lapped the reader and destroyed
    /// unconsumed data (torn).
    fn check_halo(&self, iter: u64) {
        if iter == 0 {
            return;
        }
        let mut sh = self.shared.borrow_mut();
        let expect = iter as i64 - 1;
        let buf = ((iter - 1) % 2) as usize;
        let nw = self.params.nw.min(self.params.ne) as usize;
        for e in 0..nw {
            let tag = sh.tags[self.idx][buf][e];
            if tag < expect {
                sh.stale += 1;
            } else if tag > expect {
                sh.torn += 1;
            }
        }
    }

    fn write_halo(&self, iter: u64) {
        let mut sh = self.shared.borrow_mut();
        let succ = (self.idx + 1) % self.params.p;
        let buf = (iter % 2) as usize;
        let nw = self.params.nw.min(self.params.ne) as usize;
        for e in 0..nw {
            sh.tags[succ][buf][e] = iter as i64;
        }
    }
}

impl Program for BspThread {
    fn resume(&mut self, cx: &mut ResumeCx) -> Action {
        loop {
            match self.step {
                Step::Join => {
                    self.step = Step::Settle;
                    return Action::Call(SysCall::GroupJoin(self.gid));
                }
                Step::Settle => {
                    self.step = Step::CheckSettle;
                    return Action::Call(SysCall::GroupSize(self.gid));
                }
                Step::CheckSettle => {
                    if cx.result == SysResult::Value(self.params.p as u64) {
                        self.step = Step::Admit;
                    } else {
                        self.step = Step::Settle;
                        return Action::Call(SysCall::SleepNs(50_000));
                    }
                }
                Step::Admit => match self.params.mode {
                    BspMode::Aperiodic => {
                        self.step = Step::StartClock;
                    }
                    BspMode::RtGroup { period, slice } => {
                        self.step = Step::AwaitAdmit;
                        return Action::Call(SysCall::GroupChangeConstraints {
                            group: self.gid,
                            constraints: Constraints::Periodic {
                                phase: period / 2,
                                period,
                                slice,
                            },
                        });
                    }
                },
                Step::AwaitAdmit => {
                    if cx.result == SysResult::Admission(Ok(())) {
                        self.step = Step::StartClock;
                    } else {
                        self.shared.borrow_mut().admit_failed = true;
                        self.step = Step::Done;
                    }
                }
                Step::StartClock => {
                    self.start_ns = cx.now_ns;
                    self.step = Step::Compute(0);
                }
                Step::Compute(i) => {
                    if i >= self.params.iters {
                        self.step = Step::EndClock;
                        continue;
                    }
                    self.step = Step::Communicate(i);
                    return Action::Compute(self.compute_cycles.max(1));
                }
                Step::Communicate(i) => {
                    // End of compute: consume the previous iteration's halo
                    // and publish this iteration's remote writes.
                    self.check_halo(i);
                    self.write_halo(i);
                    self.step = Step::Barrier(i);
                    if self.write_cycles > 0 {
                        return Action::Compute(self.write_cycles);
                    }
                }
                Step::Barrier(i) => {
                    if !self.params.barrier {
                        self.step = Step::Compute(i + 1);
                        continue;
                    }
                    // Arrive: one contended RMW on the shared counter.
                    let mut sh = self.shared.borrow_mut();
                    let my_sense = sh.barrier_sense;
                    sh.barrier_count += 1;
                    if sh.barrier_count == self.params.p {
                        // Last arriver flips the sense and proceeds.
                        sh.barrier_count = 0;
                        sh.barrier_sense = !sh.barrier_sense;
                        drop(sh);
                        self.step = Step::Compute(i + 1);
                        return Action::Compute(self.rmw_cycles);
                    }
                    drop(sh);
                    self.step = Step::BarrierSpin(i, my_sense);
                    return Action::Compute(self.rmw_cycles);
                }
                Step::BarrierSpin(i, my_sense) => {
                    let released = self.shared.borrow().barrier_sense != my_sense;
                    if released {
                        self.step = Step::Compute(i + 1);
                    } else {
                        // One spin-check worth of busy waiting.
                        return Action::Compute(self.spin_cycles);
                    }
                }
                Step::EndClock => {
                    let mut sh = self.shared.borrow_mut();
                    sh.done_ns[self.idx] = Some((self.start_ns, cx.now_ns));
                    self.step = Step::Done;
                }
                Step::Done => return Action::Exit,
            }
        }
    }

    fn name(&self) -> &str {
        "bsp"
    }
}

/// A spawned-but-unfinished benchmark instance on a shared node: lets
/// several gangs (or a gang plus other load) coexist.
pub struct BspHandles {
    params: BspParams,
    tids: Vec<nautix_kernel::ThreadId>,
    shared: Rc<RefCell<Shared>>,
}

/// Spawn one benchmark instance on `node`. Worker *i* is bound to CPU
/// `cpu_base + i`. The instance's group is created here (no creation-order
/// races between co-resident gangs).
pub fn spawn_bsp(node: &mut Node, params: BspParams, cpu_base: usize) -> BspHandles {
    assert!(params.p >= 1);
    assert!(
        cpu_base >= 1 && cpu_base + params.p <= node.machine.n_cpus(),
        "workers {}..{} do not fit the machine",
        cpu_base,
        cpu_base + params.p
    );
    let gid = node.create_group("bsp");
    let cm = *node.machine.cost_model();
    let base_compute = params.ne * params.nc * cm.local_compute_unit.base;
    let write_cycles = params.nw * cm.remote_write.base;
    let ne = params.ne.max(1) as usize;
    let shared = Rc::new(RefCell::new(Shared {
        tags: (0..params.p)
            .map(|_| [vec![-1; ne], vec![-1; ne]])
            .collect(),
        stale: 0,
        torn: 0,
        done_ns: vec![None; params.p],
        admit_failed: false,
        barrier_count: 0,
        barrier_sense: false,
    }));
    let mut tids = Vec::with_capacity(params.p);
    for i in 0..params.p {
        // Per-thread imbalance: thread i carries up to `imbalance_ppm`
        // extra compute, linearly by index.
        let extra = if params.p > 1 {
            base_compute * params.imbalance_ppm * i as u64 / (params.p as u64 - 1) / 1_000_000
        } else {
            0
        };
        let t = BspThread {
            idx: i,
            params,
            gid,
            shared: shared.clone(),
            step: Step::Join,
            compute_cycles: base_compute + extra,
            write_cycles,
            rmw_cycles: cm.atomic_rmw_contended.base,
            spin_cycles: (cm.spin_check.base * 8).max(500),
            start_ns: 0,
        };
        let cpu: CpuId = cpu_base + i;
        tids.push(
            node.spawn_on(cpu, &format!("bsp{i}"), Box::new(t))
                .expect("spawn bsp thread"),
        );
    }
    BspHandles {
        params,
        tids,
        shared,
    }
}

/// Collect a finished instance's results (call after the node has run).
pub fn collect_bsp(node: &Node, handles: &BspHandles) -> BspResult {
    let sh = handles.shared.borrow();
    let per_thread_ns: Vec<Nanos> = sh
        .done_ns
        .iter()
        .map(|d| d.map(|(s, e)| e.saturating_sub(s)).unwrap_or(0))
        .collect();
    let max_ns = per_thread_ns.iter().copied().max().unwrap_or(0);
    let mean_ns = if per_thread_ns.is_empty() {
        0.0
    } else {
        per_thread_ns.iter().sum::<u64>() as f64 / per_thread_ns.len() as f64
    };
    let misses = handles
        .tids
        .iter()
        .map(|&t| node.thread_state(t).stats.missed)
        .sum();
    let _ = handles.params;
    BspResult {
        per_thread_ns,
        max_ns,
        mean_ns,
        stale_reads: sh.stale,
        torn_reads: sh.torn,
        misses,
        admitted: !sh.admit_failed,
        events: 0,
    }
}

/// Run the benchmark alone on a freshly booted node.
pub fn run_bsp(mut node_cfg: NodeConfig, params: BspParams) -> BspResult {
    assert!(
        params.p < node_cfg.machine.n_cpus,
        "need {} CPUs for P={} plus the interrupt-laden CPU 0",
        params.p + 1,
        params.p
    );
    // The benchmark threads are the only load; make sure thread capacity
    // fits the idle threads plus P workers.
    node_cfg.max_threads = node_cfg
        .max_threads
        .max(node_cfg.machine.n_cpus + params.p + 1);
    let mut node = Node::new(node_cfg);
    let handles = spawn_bsp(&mut node, params, 1);
    node.run_until_quiescent();
    let mut r = collect_bsp(&node, &handles);
    r.events = node.machine.events_processed();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use nautix_hw::MachineConfig;

    fn cfg(cpus: usize) -> NodeConfig {
        let mut c = NodeConfig::phi();
        c.machine = MachineConfig::phi().with_cpus(cpus).with_seed(77);
        c.sched = nautix_rt::SchedConfig::throughput();
        c
    }

    #[test]
    fn aperiodic_with_barriers_is_race_free() {
        let p = BspParams::fine(4, 20);
        let r = run_bsp(cfg(5), p);
        assert!(r.admitted);
        assert_eq!(r.violations(), 0, "barriers must eliminate violations");
        assert!(r.max_ns > 0);
        assert_eq!(r.per_thread_ns.len(), 4);
    }

    #[test]
    fn aperiodic_without_barriers_races_under_imbalance() {
        // Without barriers and without lock-step scheduling, imbalanced
        // ring neighbors drift apart and the halo checks must fire. (5%
        // imbalance over 100 iterations drifts several full iterations.)
        let p = BspParams::fine(4, 100)
            .with_barrier(false)
            .with_imbalance_ppm(50_000);
        let r = run_bsp(cfg(5), p);
        assert!(
            r.violations() > 0,
            "unsynchronized drifting BSP must exhibit violations"
        );
    }

    #[test]
    fn barriers_tolerate_imbalance() {
        let p = BspParams::fine(4, 100)
            .with_barrier(true)
            .with_imbalance_ppm(50_000);
        let r = run_bsp(cfg(5), p);
        assert_eq!(r.violations(), 0, "barriers must mask imbalance");
    }

    #[test]
    fn rt_group_without_barriers_stays_in_lockstep() {
        let p = BspParams::fine(4, 30)
            .with_barrier(false)
            .with_mode(BspMode::RtGroup {
                period: 1_000_000,
                slice: 800_000,
            });
        let r = run_bsp(cfg(5), p);
        assert!(r.admitted, "group admission must succeed");
        assert_eq!(
            r.violations(),
            0,
            "gang-scheduled lock-step must substitute for the barrier"
        );
    }

    #[test]
    fn throttling_scales_execution_time() {
        let base = BspParams::coarse(2, 20);
        let t_hi = run_bsp(
            cfg(3),
            base.with_mode(BspMode::RtGroup {
                period: 1_000_000,
                slice: 800_000,
            }),
        );
        let t_lo = run_bsp(
            cfg(3),
            base.with_mode(BspMode::RtGroup {
                period: 1_000_000,
                slice: 200_000,
            }),
        );
        assert!(t_hi.admitted && t_lo.admitted);
        let ratio = t_lo.max_ns as f64 / t_hi.max_ns as f64;
        // 80% vs 20% utilization: ~4x slower, with scheduling slack.
        assert!(
            (2.5..6.0).contains(&ratio),
            "throttling ratio {ratio} not commensurate (hi={} lo={})",
            t_hi.max_ns,
            t_lo.max_ns
        );
    }

    #[test]
    fn infeasible_group_constraints_fail_admission() {
        let p = BspParams::fine(2, 5).with_mode(BspMode::RtGroup {
            period: 100_000,
            slice: 99_900, // 99.9% > even the throughput config's 99%
        });
        let r = run_bsp(cfg(3), p);
        assert!(!r.admitted);
    }
}
