//! The local (per-CPU) hard real-time scheduler (§3.3).
//!
//! "A local scheduler is, at its base, a simple earliest deadline first
//! (EDF) engine consisting of a pending queue, a real-time run queue, and a
//! non-real-time run queue. On entry, all newly arrived threads are pumped
//! from the pending queue into the real-time run queue. Next, the state of
//! the current thread is evaluated against the most imminent periodic or
//! sporadic thread in the real-time run queue. ... A context switch
//! immediately occurs if the selected thread is more important than the
//! current thread."
//!
//! The scheduler is **eager** (work-conserving): a runnable real-time job
//! is never delayed, which is the §3.6 defense against SMI missing time.
//! The classic lazy variant is retained behind [`SchedMode::Lazy`] for the
//! ablation study.
//!
//! This type is deliberately free of any reference to the machine model:
//! it consumes a wall-clock reading and the per-thread scheduling states,
//! and returns a [`Decision`]. The node charges its cycle costs and
//! programs the hardware. That separation keeps the scheduler unit-testable
//! exactly as a kernel's scheduler core would be.

use crate::admission::{CpuLoad, LayerTable, SchedConfig, SchedMode, MAX_LAYERS};
use crate::stats::{CpuSchedStats, DegradeStats, DispatchLog, ThreadRtStats};
use nautix_des::{Cycles, Freq, Nanos};
use nautix_hw::CpuId;
use nautix_kernel::{AdmissionError, Constraints, FixedHeap, RrQueue, ThreadId};
#[cfg(feature = "trace")]
use nautix_trace::{Record, TraceClass, TraceHandle, TraceOutcome};
use std::sync::atomic::{AtomicU64, Ordering};

/// `current_layer` value while the idle thread (or nothing yet) holds the
/// CPU: idle wall time is charged to no layer's bucket.
const LAYER_IDLE: u8 = u8::MAX;

// Process-wide degradation tally across every node and trial, for the
// `repro_all` harness summary. Purely observational: nothing reads these
// back into scheduling decisions, so they cannot perturb determinism.
static G_SPORADIC_DEMOTIONS: AtomicU64 = AtomicU64::new(0);
static G_PERIODIC_WIDENINGS: AtomicU64 = AtomicU64::new(0);
static G_PERIODIC_DEMOTIONS: AtomicU64 = AtomicU64::new(0);

/// Degradation activations accumulated process-wide (across all nodes,
/// trials, and host threads since process start).
pub fn degrade_global_stats() -> DegradeStats {
    DegradeStats {
        sporadic_demotions: G_SPORADIC_DEMOTIONS.load(Ordering::Relaxed),
        periodic_widenings: G_PERIODIC_WIDENINGS.load(Ordering::Relaxed),
        periodic_demotions: G_PERIODIC_DEMOTIONS.load(Ordering::Relaxed),
    }
}

/// How a constraint appears in admission trace records: class plus the
/// `(period, slice)` shape (a sporadic burst maps its deadline window and
/// size onto the same two fields).
#[cfg(feature = "trace")]
fn trace_shape(c: &Constraints) -> (TraceClass, Nanos, Nanos) {
    match *c {
        Constraints::Aperiodic { .. } => (TraceClass::Aperiodic, 0, 0),
        Constraints::Periodic { period, slice, .. } => (TraceClass::Periodic, period, slice),
        Constraints::Sporadic { size, deadline, .. } => (TraceClass::Sporadic, deadline, size),
    }
}

/// Why the local scheduler was invoked (diagnostics; the paper's local
/// scheduler is invoked "only on a timer interrupt, a kick interrupt from
/// a different local scheduler, or by a small set of actions the current
/// thread can take").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeReason {
    /// APIC one-shot timer.
    Timer,
    /// Kick IPI from another local scheduler.
    Kick,
    /// The current thread yielded.
    Yield,
    /// The current thread blocked (sleep, barrier, group op).
    Block,
    /// The current thread exited.
    Exit,
    /// The current thread changed constraints.
    ConstraintChange,
    /// A blocked thread became ready.
    Wake,
}

/// Scheduling class and job state of one thread, kept per thread by the
/// node and indexed by `ThreadId`.
#[derive(Debug)]
pub struct SchedThread {
    /// Current constraints.
    pub constraints: Constraints,
    /// Admission anchor Λ (wall-clock ns): arrivals are measured from it.
    pub admit_ns: Nanos,
    /// Next arrival, absolute wall-clock ns (valid for RT classes).
    pub next_arrival_ns: Nanos,
    /// Current job's absolute deadline (valid while `job_active`).
    pub deadline_ns: Nanos,
    /// Remaining guaranteed execution of the current job, in cycles.
    pub remaining_cycles: Cycles,
    /// Whether a job is currently active (arrived, not yet completed).
    pub job_active: bool,
    /// Whether the current job has begun executing (lazy mode bookkeeping).
    pub job_started: bool,
    /// Whether the thread blocked at some point during the current job
    /// (such jobs are "forfeited", not counted as met or missed).
    pub job_blocked: bool,
    /// Leftover round-robin quantum, cycles (aperiodic class).
    pub quantum_left: Cycles,
    /// A preempted program action's unfinished cycles.
    pub pending_compute: Option<Cycles>,
    /// Per-thread RT statistics.
    pub stats: ThreadRtStats,
    /// Dispatch timestamps for the synchronization figures.
    pub dispatch_log: DispatchLog,
    /// Deadline misses since the last met job (overload detection for
    /// [`crate::admission::DegradePolicy`]).
    pub consecutive_misses: u32,
    /// Reservation-widening rounds consumed by the degradation policy.
    pub widen_rounds: u32,
}

impl SchedThread {
    /// Fresh state for a newly spawned (aperiodic) thread.
    pub fn new_aperiodic() -> Self {
        SchedThread {
            constraints: Constraints::default_aperiodic(),
            admit_ns: 0,
            next_arrival_ns: 0,
            deadline_ns: 0,
            remaining_cycles: 0,
            job_active: false,
            job_started: false,
            job_blocked: false,
            quantum_left: 0,
            pending_compute: None,
            stats: ThreadRtStats::default(),
            dispatch_log: DispatchLog::with_capacity(0),
            consecutive_misses: 0,
            widen_rounds: 0,
        }
    }

    /// Whether the thread currently holds real-time constraints.
    pub fn is_rt(&self) -> bool {
        self.constraints.is_realtime()
    }

    /// Aperiodic priority (the post-burst priority for sporadic threads).
    pub fn aperiodic_priority(&self) -> u64 {
        match self.constraints {
            Constraints::Aperiodic { priority } => priority,
            Constraints::Sporadic {
                aperiodic_priority, ..
            } => aperiodic_priority,
            Constraints::Periodic { .. } => u64::MAX,
        }
    }
}

/// Outcome of a completed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Completed by the deadline.
    Met,
    /// Completed `late_ns` after the deadline.
    Missed {
        /// Lateness in nanoseconds.
        late_ns: Nanos,
    },
    /// The thread blocked during the job and forfeited the guarantee.
    Forfeited,
}

/// What the node must do after an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The thread to run (the idle thread when nothing else is runnable).
    pub next: ThreadId,
    /// Whether this differs from the previously running thread.
    pub switched: bool,
    /// Timer request relative to the dispatched thread's *execution*: fire
    /// once it has run this many more cycles (slice budget, quantum). The
    /// node adds the kernel-path backlog before the thread resumes.
    pub timer_exec_cycles: Option<Cycles>,
    /// Timer request at an absolute wall-clock instant (pending arrivals,
    /// lazy latest-start points, deadline backstops).
    pub timer_wall_ns: Option<Nanos>,
    /// Whether the chosen thread is hard real-time (drives the TPR).
    pub next_is_rt: bool,
}

impl Decision {
    /// Whether any timer was requested.
    pub fn timer_armed(&self) -> bool {
        self.timer_exec_cycles.is_some() || self.timer_wall_ns.is_some()
    }
}

/// The per-CPU scheduler.
pub struct LocalScheduler {
    /// This scheduler's CPU.
    pub cpu: CpuId,
    cfg: SchedConfig,
    freq: Freq,
    /// Admitted-load ledger for admission control.
    pub load: CpuLoad,
    /// Threads whose next arrival is in the future, keyed by arrival time.
    pending: FixedHeap<Nanos, ThreadId>,
    /// Arrived real-time jobs, keyed by absolute deadline.
    rt_run: FixedHeap<Nanos, ThreadId>,
    /// Aperiodic threads, round-robin within priority.
    nonrt: RrQueue<ThreadId>,
    /// The running thread (the idle thread counts).
    pub current: ThreadId,
    /// This CPU's idle thread.
    pub idle: ThreadId,
    /// Counters and samples.
    pub stats: CpuSchedStats,
    /// Jobs completed on this invocation (for harnesses).
    pub last_outcome: Option<JobOutcome>,
    /// Whether layer accounting runs at all. False for the exact default
    /// [`LayerTable`], which keeps the unlayered hot path byte-identical:
    /// no bucket arithmetic, no extra timers, no layer records.
    layers_active: bool,
    /// Remaining wall-time tokens per layer for the current replenish
    /// window. Signed: the final span before a throttle may overdraw by up
    /// to the timer quantization.
    layer_buckets: [i64; MAX_LAYERS],
    /// Honest wall time charged per layer since the last replenish. Kept
    /// independent of the buckets so a corrupted refill (sabotage) still
    /// reports true consumption for the oracle to catch.
    layer_spent: [u64; MAX_LAYERS],
    /// Whether a `LayerThrottle` was already recorded this window.
    layer_throttle_mark: [bool; MAX_LAYERS],
    /// Replenish window index (`now_ns / replenish_ns`) last refilled.
    layer_epoch: u64,
    /// Wall clock of the previous scheduling pass (span charging).
    last_invoke_ns: Nanos,
    /// Layer of the thread dispatched by the previous pass, or
    /// [`LAYER_IDLE`]; the span until the next pass is charged to it.
    current_layer: u8,
    /// Whether the last selection skipped a throttled-layer thread (arms
    /// the window-boundary wake-up timer).
    throttle_skipped: bool,
    #[cfg(feature = "trace")]
    trace: Option<TraceHandle>,
    /// Deliberately broken dispatch for oracle regression tests: pick the
    /// lowest-numbered runnable RT thread (creation order) instead of the
    /// earliest deadline. Never set outside tests.
    #[cfg(feature = "trace")]
    sabotage_fifo: bool,
    /// Deliberately broken replenish for layer-oracle regression tests:
    /// refill every bucket to four times its cap. Never set outside tests.
    #[cfg(feature = "trace")]
    sabotage_layer: bool,
}

/// Initial bucket fill: every configured layer starts window 0 with a full
/// cap of tokens.
fn boot_buckets(layers: &LayerTable) -> [i64; MAX_LAYERS] {
    let mut buckets = [0i64; MAX_LAYERS];
    for (l, b) in buckets.iter_mut().enumerate().take(layers.count()) {
        *b = layers.cap_ns(l) as i64;
    }
    buckets
}

impl LocalScheduler {
    /// A scheduler for `cpu` whose idle thread is `idle`.
    pub fn new(cpu: CpuId, idle: ThreadId, cfg: SchedConfig, freq: Freq, capacity: usize) -> Self {
        let layers_active = cfg.layers != LayerTable::default();
        let layer_buckets = boot_buckets(&cfg.layers);
        LocalScheduler {
            cpu,
            cfg,
            freq,
            load: CpuLoad::new(),
            pending: FixedHeap::new(capacity),
            rt_run: FixedHeap::new(capacity),
            nonrt: RrQueue::new(capacity),
            current: idle,
            idle,
            stats: CpuSchedStats::default(),
            last_outcome: None,
            layers_active,
            layer_buckets,
            layer_spent: [0; MAX_LAYERS],
            layer_throttle_mark: [false; MAX_LAYERS],
            layer_epoch: 0,
            last_invoke_ns: 0,
            current_layer: LAYER_IDLE,
            throttle_skipped: false,
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            sabotage_fifo: false,
            #[cfg(feature = "trace")]
            sabotage_layer: false,
        }
    }

    /// The boot-time configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.cfg
    }

    /// Install (or remove) the trace sink fed by this scheduler's queue
    /// transitions, dispatches, and admission verdicts.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Enable the deliberately broken FIFO dispatch (regression tests for
    /// the EDF oracle only).
    #[cfg(feature = "trace")]
    pub fn set_sabotage_fifo(&mut self, on: bool) {
        self.sabotage_fifo = on;
    }

    /// Enable the deliberately broken over-replenish (regression tests for
    /// the layer-isolation oracle only): each refill grants four caps of
    /// tokens, letting a layer overdraw its bandwidth while the honest
    /// spent counter still tells the truth.
    #[cfg(feature = "trace")]
    pub fn set_sabotage_layer(&mut self, on: bool) {
        self.sabotage_layer = on;
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, r: Record) {
        if let Some(t) = &self.trace {
            t.emit(r);
        }
    }

    /// Threads resident on this CPU (for the per-thread pass cost).
    pub fn resident(&self) -> usize {
        self.pending.len() + self.rt_run.len() + self.nonrt.len() + 1
    }

    /// Enqueue a ready thread according to its class and job state.
    pub fn enqueue(&mut self, tid: ThreadId, st: &mut SchedThread, now_ns: Nanos) {
        debug_assert!(tid != self.idle, "the idle thread is never queued");
        if st.is_rt() {
            if st.job_active && st.deadline_ns > now_ns && st.remaining_cycles > 0 {
                self.rt_run
                    .push(st.deadline_ns, tid)
                    .expect("rt_run overflow: capacity misconfigured");
                #[cfg(feature = "trace")]
                self.emit(Record::RtQueued {
                    cpu: self.cpu as u32,
                    tid: tid as u32,
                    deadline_ns: st.deadline_ns,
                });
            } else {
                // (Re)synchronize to the next arrival strictly after now.
                if st.job_active {
                    // The job lapsed while blocked; forfeit it.
                    st.job_active = false;
                }
                self.resync_arrival(st, now_ns);
                self.pending
                    .push(st.next_arrival_ns, tid)
                    .expect("pending overflow: capacity misconfigured");
                #[cfg(feature = "trace")]
                self.emit(Record::PendingQueued {
                    cpu: self.cpu as u32,
                    tid: tid as u32,
                    arrival_ns: st.next_arrival_ns,
                });
            }
        } else {
            self.nonrt
                .push(st.aperiodic_priority(), tid)
                .expect("nonrt overflow: capacity misconfigured");
        }
    }

    /// Advance `next_arrival_ns` to the first arrival at or after `now_ns`.
    fn resync_arrival(&self, st: &mut SchedThread, now_ns: Nanos) {
        match st.constraints {
            Constraints::Periodic { phase, period, .. } => {
                let first = st.admit_ns + phase;
                if st.next_arrival_ns < first {
                    st.next_arrival_ns = first;
                }
                if st.next_arrival_ns < now_ns {
                    let behind = now_ns - st.next_arrival_ns;
                    let k = behind / period + 1;
                    st.next_arrival_ns += k * period;
                }
            }
            Constraints::Sporadic { phase, .. } => {
                let first = st.admit_ns + phase;
                st.next_arrival_ns = first.max(st.next_arrival_ns);
            }
            Constraints::Aperiodic { .. } => {}
        }
    }

    /// Enqueue a thread directly on the non-RT queue regardless of its
    /// constraint class. Used for threads executing inside group admission
    /// control, which "runs in the context of the thread, and the thread is
    /// aperiodic (not real-time)" until the phase-corrected anchor (§4.4).
    pub fn enqueue_nonrt(&mut self, tid: ThreadId, priority: u64) {
        debug_assert!(tid != self.idle);
        self.nonrt.push(priority, tid).expect("nonrt overflow");
    }

    /// Remove a thread from every queue (exit, migration, class change).
    pub fn dequeue(&mut self, tid: ThreadId) {
        self.pending.remove(tid);
        self.rt_run.remove(tid);
        self.nonrt.remove(tid);
        #[cfg(feature = "trace")]
        self.emit(Record::Dequeued {
            cpu: self.cpu as u32,
            tid: tid as u32,
        });
    }

    /// Whether the thread sits in this scheduler's non-RT queue
    /// (work-stealing candidates; only aperiodic threads can be stolen).
    pub fn nonrt_contains(&self, tid: ThreadId) -> bool {
        self.nonrt.contains(tid)
    }

    /// Number of queued aperiodic threads (work-steal victim load probe).
    pub fn nonrt_len(&self) -> usize {
        self.nonrt.len()
    }

    /// Pop one queued aperiodic thread (the victim side of §3.4's
    /// power-of-two-choices stealing, when no bound-ness filter applies).
    pub fn steal_nonrt(&mut self) -> Option<ThreadId> {
        self.nonrt.pop().map(|(_, t)| t)
    }

    /// The queued aperiodic threads, front to back (steal-candidate
    /// inspection). Borrows the ring directly — the steal path probes
    /// victims on every idle pass and must not allocate a snapshot.
    pub fn nonrt_iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.nonrt.iter().map(|(_, t)| t)
    }

    /// Reinitialize for a new trial, keeping the queues' backing storage
    /// when the capacity is unchanged (the common case in a sweep). Must
    /// leave the scheduler in exactly the state `new` would.
    pub fn reset(
        &mut self,
        cpu: CpuId,
        idle: ThreadId,
        cfg: SchedConfig,
        freq: Freq,
        capacity: usize,
    ) {
        self.cpu = cpu;
        self.cfg = cfg;
        self.freq = freq;
        self.load = CpuLoad::new();
        if self.pending.capacity() == capacity {
            self.pending.clear();
            self.rt_run.clear();
            self.nonrt.clear();
        } else {
            self.pending = FixedHeap::new(capacity);
            self.rt_run = FixedHeap::new(capacity);
            self.nonrt = RrQueue::new(capacity);
        }
        self.current = idle;
        self.idle = idle;
        self.stats = CpuSchedStats::default();
        self.last_outcome = None;
        self.layers_active = self.cfg.layers != LayerTable::default();
        self.layer_buckets = boot_buckets(&self.cfg.layers);
        self.layer_spent = [0; MAX_LAYERS];
        self.layer_throttle_mark = [false; MAX_LAYERS];
        self.layer_epoch = 0;
        self.last_invoke_ns = 0;
        self.current_layer = LAYER_IDLE;
        self.throttle_skipped = false;
        #[cfg(feature = "trace")]
        {
            self.trace = None;
            self.sabotage_fifo = false;
            self.sabotage_layer = false;
        }
    }

    /// Individual admission control: `nk_sched_thread_change_constraints`.
    /// On success the thread's class changes and its job state is reset;
    /// the *caller* must re-queue it (it is typically the running thread).
    pub fn change_constraints(
        &mut self,
        _tid: ThreadId,
        st: &mut SchedThread,
        new: Constraints,
        now_ns: Nanos,
        anchor: bool,
    ) -> Result<(), AdmissionError> {
        let old = st.constraints;
        self.load.release(&old);
        let candidate = self.load.admit(&self.cfg, &new);
        // The probe (when the policy simulated) belongs to the candidate's
        // verdict; take it before a rollback re-admission can overwrite it.
        let _probe = self.load.take_probe();
        let verdict = match candidate {
            Ok(()) => {
                st.constraints = new;
                st.job_active = false;
                st.job_started = false;
                st.job_blocked = false;
                st.remaining_cycles = 0;
                // A fresh contract restarts the overload bookkeeping.
                st.consecutive_misses = 0;
                st.widen_rounds = 0;
                if anchor {
                    self.anchor(st, now_ns);
                }
                Ok(())
            }
            Err(e) => {
                self.load
                    .admit(&self.cfg, &old)
                    .expect("re-admitting previously admitted constraints");
                // The rollback's own probe pairs with no verdict: drop it.
                let _ = self.load.take_probe();
                if old.is_realtime() {
                    self.load.note_rollback();
                }
                Err(e)
            }
        };
        #[cfg(feature = "trace")]
        {
            if verdict.is_ok() && old.is_realtime() {
                self.emit(Record::ConstraintsReleased {
                    cpu: self.cpu as u32,
                    tid: _tid as u32,
                });
            }
            self.emit_probe(_probe);
            self.emit_verdict(_tid, &new, verdict.is_ok());
            if verdict.is_err() && old.is_realtime() {
                self.emit_rollback(_tid, &old);
            }
        }
        verdict
    }

    /// Record an admission verdict for `tid` (also used by the node's
    /// group-admission path, which goes through the ledger directly).
    #[cfg(feature = "trace")]
    pub fn emit_verdict(&self, tid: ThreadId, c: &Constraints, accepted: bool) {
        let (class, period_ns, slice_ns) = trace_shape(c);
        self.emit(Record::AdmitVerdict {
            cpu: self.cpu as u32,
            tid: tid as u32,
            accepted,
            enforced: self.cfg.admission_enabled,
            class,
            period_ns,
            slice_ns,
        });
    }

    /// Record the hyperperiod-simulation probe backing the next admission
    /// verdict on this CPU. No-op when the policy did not simulate (the
    /// common closed-form case leaves no probe). Must precede the paired
    /// [`LocalScheduler::emit_verdict`] on the same CPU.
    #[cfg(feature = "trace")]
    pub fn emit_probe(&self, probe: Option<crate::admission::SimProbe>) {
        if let Some(p) = probe {
            self.emit(Record::SimCacheProbe {
                cpu: self.cpu as u32,
                hit: p.hit,
                feasible: p.feasible,
                sig: p.sig,
                overhead_ns: p.overhead_ns,
                window_cap_ns: p.window_cap_ns,
            });
        }
    }

    /// Record a rollback re-admission: a rejected verdict cleared `tid`'s
    /// mirror entry, but the ledger restored its previous constraints `c`.
    #[cfg(feature = "trace")]
    pub fn emit_rollback(&self, tid: ThreadId, c: &Constraints) {
        let (class, period_ns, slice_ns) = trace_shape(c);
        self.emit(Record::AdmitRollback {
            cpu: self.cpu as u32,
            tid: tid as u32,
            enforced: self.cfg.admission_enabled,
            class,
            period_ns,
            slice_ns,
        });
    }

    /// Anchor the admission time Λ at `now_ns` and compute the first
    /// arrival. Used immediately for individual admission; group admission
    /// anchors at phase-correction time instead (§4.4).
    pub fn anchor(&self, st: &mut SchedThread, now_ns: Nanos) {
        st.admit_ns = now_ns;
        st.next_arrival_ns = match st.constraints {
            Constraints::Periodic { phase, .. } | Constraints::Sporadic { phase, .. } => {
                now_ns + phase
            }
            Constraints::Aperiodic { .. } => 0,
        };
    }

    /// Finalize a thread that is leaving the scheduler for good (exit):
    /// if its current job just completed, record the outcome that the next
    /// scheduling pass would have recorded.
    pub fn finalize_exit(&mut self, tid: ThreadId, st: &mut SchedThread, now_ns: Nanos) {
        if st.is_rt() && st.job_active && st.remaining_cycles == 0 {
            self.complete_job(tid, st, now_ns);
        }
    }

    /// Account `cycles` of execution by `tid` against its current job.
    pub fn account(&mut self, st: &mut SchedThread, cycles: Cycles) {
        st.stats.executed_cycles += cycles;
        if st.is_rt() && st.job_active {
            st.remaining_cycles = st.remaining_cycles.saturating_sub(cycles);
        } else if !st.is_rt() {
            st.quantum_left = st.quantum_left.saturating_sub(cycles);
        }
    }

    /// The core scheduling pass. `now_ns` is this CPU's wall-clock
    /// estimate; `threads` the global per-thread scheduling states; the
    /// current thread's execution must already be accounted.
    ///
    /// `current_runnable` tells the pass whether the current thread can
    /// keep the CPU (false when it blocked or exited).
    ///
    /// The machine pump batches same-timestamp events, but the node still
    /// invokes this pass once per kernel-visible interrupt, never once per
    /// batch: two same-instant interrupts on one CPU are separated by the
    /// first pass's busy window, so the second defers past it — collapsing
    /// them into one pass would erase that deferral and change every
    /// downstream timestamp. Batching stops at the hardware layer.
    pub fn invoke(
        &mut self,
        now_ns: Nanos,
        threads: &mut [SchedThread],
        reason: InvokeReason,
        current_runnable: bool,
    ) -> Decision {
        self.stats.invocations += 1;
        match reason {
            InvokeReason::Timer => self.stats.timer_invocations += 1,
            InvokeReason::Kick => self.stats.kick_invocations += 1,
            _ => {}
        }
        self.last_outcome = None;

        let prev = self.current;

        // 0. Layer bandwidth accounting: replenish buckets at deterministic
        // machine-time boundaries, then charge the wall span since the
        // previous pass to the layer that was dispatched then. Skipped
        // entirely (and byte-identically) on the default single-layer
        // config.
        if self.layers_active {
            self.throttle_skipped = false;
            self.layer_account(now_ns);
        }

        // 1. Handle the current thread's state.
        if prev != self.idle {
            let st = &mut threads[prev];
            if !current_runnable {
                // Blocked or exited: the node moved it out already; note a
                // forfeited job if one was active.
                if st.is_rt() && st.job_active {
                    st.job_blocked = true;
                }
            } else {
                if self.cfg.degrade.enabled
                    && st.job_active
                    && st.remaining_cycles > 0
                    && now_ns > st.deadline_ns
                    && matches!(st.constraints, Constraints::Sporadic { .. })
                {
                    // Overrun: a blown sporadic burst would outrank every
                    // periodic deadline in EDF order forever. Demote it.
                    self.demote(prev, st);
                    self.stats.degrade.sporadic_demotions += 1;
                    G_SPORADIC_DEMOTIONS.fetch_add(1, Ordering::Relaxed);
                }
                if st.is_rt() && st.job_active && st.remaining_cycles == 0 {
                    // Job complete: classify and schedule the next arrival.
                    self.complete_job(prev, st, now_ns);
                }
                // Re-queue below after pumping (so selection sees it).
            }
        }

        // 2. Pump arrivals from pending into the RT run queue.
        while let Some((arrival, tid)) = self.pending.peek() {
            if arrival > now_ns {
                break;
            }
            self.pending.pop();
            let st = &mut threads[tid];
            self.activate_job(st, arrival);
            self.rt_run
                .push(st.deadline_ns, tid)
                .expect("rt_run overflow");
            #[cfg(feature = "trace")]
            self.emit(Record::JobArrive {
                cpu: self.cpu as u32,
                tid: tid as u32,
                arrival_ns: arrival,
                deadline_ns: threads[tid].deadline_ns,
            });
        }

        // Re-queue a still-runnable current thread so selection is uniform.
        if prev != self.idle && current_runnable {
            let st = &mut threads[prev];
            self.enqueue_current(prev, st, now_ns);
        }

        // 3. Select.
        let next = self.select(now_ns, threads);
        let switched = next != prev;
        if switched {
            self.stats.switches += 1;
        }
        // The chosen thread leaves the queues while it runs.
        if next != self.idle {
            self.dequeue_running(next);
            let st = &mut threads[next];
            if st.is_rt() && st.job_active {
                st.job_started = true;
            } else if !st.is_rt() && st.quantum_left == 0 {
                st.quantum_left = self.freq.ns_to_cycles_ceil(self.cfg.aperiodic_quantum_ns);
            }
            if switched {
                st.stats.dispatches += 1;
            }
        }
        self.current = next;
        if self.layers_active {
            // The span until the next pass is charged to this layer; the
            // class is read at dispatch time, so a later demotion cannot
            // desynchronize the charge from the trace mirror.
            self.current_layer = if next == self.idle {
                LAYER_IDLE
            } else {
                self.cfg.layers.layer_of(&threads[next].constraints) as u8
            };
        }

        // 4. Choose the next timer.
        let (timer_exec_cycles, timer_wall_ns) = self.next_timer(now_ns, threads, next);
        let next_is_rt = next != self.idle && threads[next].is_rt();
        #[cfg(feature = "trace")]
        {
            if switched && prev != self.idle && current_runnable {
                self.emit(Record::Preempt {
                    cpu: self.cpu as u32,
                    tid: prev as u32,
                    now_ns,
                });
            }
            let st = &threads[next];
            let in_job_rt = next != self.idle && st.is_rt() && st.job_active;
            self.emit(Record::Dispatch {
                cpu: self.cpu as u32,
                tid: next as u32,
                now_ns,
                deadline_ns: if in_job_rt {
                    st.deadline_ns
                } else {
                    Nanos::MAX
                },
                is_rt: in_job_rt,
                is_idle: next == self.idle,
                switched,
                layer: if next == self.idle {
                    nautix_trace::TRACE_LAYER_IDLE
                } else {
                    self.cfg.layers.layer_of(&st.constraints) as u32
                },
            });
        }
        Decision {
            next,
            switched,
            timer_exec_cycles,
            timer_wall_ns,
            next_is_rt,
        }
    }

    fn activate_job(&self, st: &mut SchedThread, arrival_ns: Nanos) {
        match st.constraints {
            Constraints::Periodic { period, slice, .. } => {
                st.job_active = true;
                st.job_started = false;
                st.job_blocked = false;
                st.deadline_ns = arrival_ns + period;
                st.next_arrival_ns = arrival_ns + period;
                st.remaining_cycles = self.freq.ns_to_cycles_ceil(slice);
                st.stats.arrivals += 1;
            }
            Constraints::Sporadic { size, deadline, .. } => {
                st.job_active = true;
                st.job_started = false;
                st.job_blocked = false;
                st.deadline_ns = st.admit_ns + deadline;
                st.remaining_cycles = self.freq.ns_to_cycles_ceil(size);
                st.stats.arrivals += 1;
            }
            Constraints::Aperiodic { .. } => unreachable!("aperiodic threads never pend"),
        }
    }

    fn complete_job(&mut self, tid: ThreadId, st: &mut SchedThread, now_ns: Nanos) {
        let outcome = if st.job_blocked {
            JobOutcome::Forfeited
        } else if now_ns <= st.deadline_ns {
            st.stats.met += 1;
            JobOutcome::Met
        } else {
            st.stats.missed += 1;
            let late = now_ns - st.deadline_ns;
            st.stats.miss_times.push(late);
            JobOutcome::Missed { late_ns: late }
        };
        self.last_outcome = Some(outcome);
        match outcome {
            JobOutcome::Met => st.consecutive_misses = 0,
            JobOutcome::Missed { .. } => st.consecutive_misses += 1,
            JobOutcome::Forfeited => {}
        }
        st.job_active = false;
        #[cfg(feature = "trace")]
        self.emit(Record::JobComplete {
            cpu: self.cpu as u32,
            tid: tid as u32,
            now_ns,
            deadline_ns: st.deadline_ns,
            outcome: match outcome {
                JobOutcome::Met => TraceOutcome::Met,
                JobOutcome::Missed { .. } => TraceOutcome::Missed,
                JobOutcome::Forfeited => TraceOutcome::Forfeited,
            },
        });
        // A sporadic burst decays to the aperiodic class.
        if let Constraints::Sporadic {
            aperiodic_priority, ..
        } = st.constraints
        {
            self.load.release(&st.constraints);
            st.constraints = Constraints::Aperiodic {
                priority: aperiodic_priority,
            };
            #[cfg(feature = "trace")]
            self.emit(Record::ConstraintsReleased {
                cpu: self.cpu as u32,
                tid: tid as u32,
            });
        }
        // Sustained interference on a periodic thread: widen or demote.
        if self.cfg.degrade.enabled && st.consecutive_misses >= self.cfg.degrade.miss_threshold {
            if let Constraints::Periodic {
                phase,
                period,
                slice,
            } = st.constraints
            {
                self.widen_or_demote(tid, st, phase, period, slice);
            }
        }
        let _ = tid;
    }

    /// Demote a thread to the aperiodic class, releasing its reservation
    /// and abandoning any active job.
    fn demote(&mut self, tid: ThreadId, st: &mut SchedThread) {
        self.load.release(&st.constraints);
        let priority = match st.constraints {
            Constraints::Sporadic {
                aperiodic_priority, ..
            } => aperiodic_priority,
            _ => 1,
        };
        st.constraints = Constraints::Aperiodic { priority };
        st.job_active = false;
        st.job_started = false;
        st.remaining_cycles = 0;
        st.consecutive_misses = 0;
        st.widen_rounds = 0;
        #[cfg(feature = "trace")]
        self.emit(Record::ConstraintsReleased {
            cpu: self.cpu as u32,
            tid: tid as u32,
        });
        let _ = tid;
    }

    /// Degradation response for a periodic thread past the miss threshold:
    /// revoke the admission and resubmit with the period widened by the
    /// policy's percentage (same slice — lower utilization, more slack per
    /// job). Once the widening rounds are exhausted, or if the widened
    /// reservation is rejected, fall back to aperiodic demotion.
    fn widen_or_demote(
        &mut self,
        tid: ThreadId,
        st: &mut SchedThread,
        phase: Nanos,
        period: Nanos,
        slice: Nanos,
    ) {
        if st.widen_rounds >= self.cfg.degrade.max_widen {
            self.demote(tid, st);
            self.stats.degrade.periodic_demotions += 1;
            G_PERIODIC_DEMOTIONS.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Widen the period, keeping it on the granularity grid.
        let g = self.cfg.granularity_ns.max(1);
        let mut widened = period + period * self.cfg.degrade.widen_pct as u64 / 100;
        widened = widened.div_ceil(g) * g;
        if widened <= period {
            widened = period + g;
        }
        self.load.release(&st.constraints);
        let new = Constraints::Periodic {
            phase,
            period: widened,
            slice,
        };
        let widened_verdict = self.load.admit(&self.cfg, &new);
        let _probe = self.load.take_probe();
        match widened_verdict {
            Ok(()) => {
                st.constraints = new;
                st.widen_rounds += 1;
                st.consecutive_misses = 0;
                self.stats.degrade.periodic_widenings += 1;
                G_PERIODIC_WIDENINGS.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "trace")]
                {
                    self.emit(Record::ConstraintsReleased {
                        cpu: self.cpu as u32,
                        tid: tid as u32,
                    });
                    self.emit_probe(_probe);
                    self.emit_verdict(tid, &new, true);
                }
            }
            Err(_) => {
                // The reservation is already released; finish the demotion
                // by hand (demote() would double-release). No verdict is
                // emitted here, so the widened admit's probe is dropped
                // with it — probes pair only with emitted verdicts.
                st.constraints = Constraints::Aperiodic { priority: 1 };
                st.job_active = false;
                st.job_started = false;
                st.remaining_cycles = 0;
                st.consecutive_misses = 0;
                st.widen_rounds = 0;
                self.stats.degrade.periodic_demotions += 1;
                G_PERIODIC_DEMOTIONS.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "trace")]
                self.emit(Record::ConstraintsReleased {
                    cpu: self.cpu as u32,
                    tid: tid as u32,
                });
            }
        }
        let _ = tid;
    }

    /// Put the (runnable) outgoing current thread back in a queue.
    fn enqueue_current(&mut self, tid: ThreadId, st: &mut SchedThread, now_ns: Nanos) {
        if st.is_rt() {
            if st.job_active && st.remaining_cycles > 0 {
                self.rt_run
                    .push(st.deadline_ns, tid)
                    .expect("rt_run overflow");
                #[cfg(feature = "trace")]
                self.emit(Record::RtQueued {
                    cpu: self.cpu as u32,
                    tid: tid as u32,
                    deadline_ns: st.deadline_ns,
                });
            } else {
                // For a completed periodic job next_arrival is already the
                // deadline of the finished job; if that instant has passed
                // (a miss), resynchronize to a strictly future arrival.
                if st.next_arrival_ns <= now_ns {
                    self.resync_arrival(st, now_ns);
                    if st.next_arrival_ns <= now_ns {
                        st.next_arrival_ns = now_ns + 1;
                    }
                }
                self.pending
                    .push(st.next_arrival_ns, tid)
                    .expect("pending overflow");
                #[cfg(feature = "trace")]
                self.emit(Record::PendingQueued {
                    cpu: self.cpu as u32,
                    tid: tid as u32,
                    arrival_ns: st.next_arrival_ns,
                });
            }
        } else {
            self.nonrt
                .push(st.aperiodic_priority(), tid)
                .expect("nonrt overflow");
        }
    }

    fn dequeue_running(&mut self, tid: ThreadId) {
        self.rt_run.remove(tid);
        self.nonrt.remove(tid);
    }

    /// Replenish the layer buckets when a window boundary has passed, then
    /// charge the wall span since the previous pass. Called only when
    /// `layers_active`.
    fn layer_account(&mut self, now_ns: Nanos) {
        let layers = self.cfg.layers;
        let epoch = now_ns / layers.replenish_ns;
        if epoch > self.layer_epoch {
            // One refill per pass even if several windows elapsed: the
            // flushed `spent` covers everything charged since the previous
            // refill, which is what the oracle's bandwidth bound checks.
            for l in 0..layers.count() {
                #[cfg(feature = "trace")]
                self.emit(Record::LayerReplenish {
                    cpu: self.cpu as u32,
                    layer: l as u32,
                    spent_ns: self.layer_spent[l],
                    cap_ns: layers.cap_ns(l),
                });
                #[allow(unused_mut)]
                let mut cap = layers.cap_ns(l) as i64;
                #[cfg(feature = "trace")]
                if self.sabotage_layer {
                    cap *= 4;
                }
                self.layer_buckets[l] = cap;
                self.layer_spent[l] = 0;
                self.layer_throttle_mark[l] = false;
                self.stats.layer_replenishes += 1;
            }
            self.layer_epoch = epoch;
        }
        let span = now_ns.saturating_sub(self.last_invoke_ns);
        self.last_invoke_ns = now_ns;
        if span == 0 || self.current_layer == LAYER_IDLE {
            return;
        }
        let l = self.current_layer as usize;
        self.layer_spent[l] += span;
        if !layers.spec(l).exempt() {
            self.layer_buckets[l] -= span as i64;
            if self.layer_buckets[l] <= 0 && !self.layer_throttle_mark[l] {
                self.layer_throttle_mark[l] = true;
                self.stats.layer_throttles += 1;
                #[cfg(feature = "trace")]
                self.emit(Record::LayerThrottle {
                    cpu: self.cpu as u32,
                    layer: l as u32,
                    now_ns,
                });
            }
        }
    }

    /// Which layers are currently throttled (finite guarantee, exhausted
    /// bucket). Exempt layers (guarantee + burst covering the whole CPU)
    /// never throttle.
    fn throttled_mask(&self) -> [bool; MAX_LAYERS] {
        let mut mask = [false; MAX_LAYERS];
        for (l, m) in mask.iter_mut().enumerate().take(self.cfg.layers.count()) {
            *m = !self.cfg.layers.spec(l).exempt() && self.layer_buckets[l] <= 0;
        }
        mask
    }

    /// The layer the thread's current class maps to.
    fn layer_of_thread(&self, st: &SchedThread) -> usize {
        self.cfg.layers.layer_of(&st.constraints)
    }

    /// Selection with one or more layers throttled: the same EDF (or lazy)
    /// order restricted to eligible layers, background yielding to batch
    /// yielding to RT by construction — a throttled layer's threads are
    /// simply invisible until the next replenish. Runs a deterministic
    /// `(deadline, tid)` min-scan instead of the heap peek; this path is
    /// never reached on the default config.
    fn select_throttled(
        &mut self,
        now_ns: Nanos,
        threads: &[SchedThread],
        throttled: &[bool; MAX_LAYERS],
    ) -> ThreadId {
        let mut skipped = false;
        let mut best: Option<(Nanos, ThreadId)> = None;
        for (deadline, tid) in self.rt_run.iter() {
            if throttled[self.layer_of_thread(&threads[tid])] {
                skipped = true;
                continue;
            }
            if self.cfg.mode == SchedMode::Lazy {
                let st = &threads[tid];
                let remaining_ns =
                    self.freq.cycles_to_ns(st.remaining_cycles) + 1 + self.cfg.lazy_margin_ns;
                let latest_start = st.deadline_ns.saturating_sub(remaining_ns);
                if !st.job_started && now_ns < latest_start {
                    continue;
                }
            }
            match best {
                Some((d, t)) if (d, t) <= (deadline, tid) => {}
                _ => best = Some((deadline, tid)),
            }
        }
        let mut pick = best.map(|(_, tid)| tid);
        if pick.is_none() {
            for tid in self.nonrt.iter().map(|(_, t)| t) {
                if throttled[self.layer_of_thread(&threads[tid])] {
                    skipped = true;
                    continue;
                }
                pick = Some(tid);
                break;
            }
        }
        if skipped {
            self.throttle_skipped = true;
        }
        pick.unwrap_or(self.idle)
    }

    /// EDF selection with eagerness (or the lazy variant).
    fn select(&mut self, now_ns: Nanos, threads: &[SchedThread]) -> ThreadId {
        if self.layers_active {
            let throttled = self.throttled_mask();
            if throttled.iter().any(|&t| t) {
                return self.select_throttled(now_ns, threads, &throttled);
            }
        }
        match self.cfg.mode {
            SchedMode::Eager => {
                #[cfg(feature = "trace")]
                if self.sabotage_fifo {
                    let mut first: Option<ThreadId> = None;
                    for (_, tid) in self.rt_run.iter() {
                        first = Some(first.map_or(tid, |f| f.min(tid)));
                    }
                    if let Some(tid) = first {
                        return tid;
                    }
                }
                if let Some((_, tid)) = self.rt_run.peek() {
                    return tid;
                }
            }
            SchedMode::Lazy => {
                // Run an RT job only if it already started or its latest
                // feasible start has been reached.
                let mut best: Option<(Nanos, ThreadId)> = None;
                for (deadline, tid) in self.rt_run.iter() {
                    let st = &threads[tid];
                    let remaining_ns =
                        self.freq.cycles_to_ns(st.remaining_cycles) + 1 + self.cfg.lazy_margin_ns;
                    let latest_start = st.deadline_ns.saturating_sub(remaining_ns);
                    if st.job_started || now_ns >= latest_start {
                        match best {
                            Some((d, _)) if d <= deadline => {}
                            _ => best = Some((deadline, tid)),
                        }
                    }
                }
                if let Some((_, tid)) = best {
                    return tid;
                }
            }
        }
        if let Some((_, tid)) = self.nonrt.peek() {
            return tid;
        }
        self.idle
    }

    /// Next one-shot request: the earliest of pending arrivals, the
    /// running RT job's slice end, the aperiodic quantum end, and (lazy)
    /// the latest-start instants of delayed jobs. Execution-relative and
    /// wall-clock requests are kept apart: only the former starts counting
    /// when the dispatched thread actually resumes.
    fn next_timer(
        &self,
        now_ns: Nanos,
        threads: &[SchedThread],
        next: ThreadId,
    ) -> (Option<Cycles>, Option<Nanos>) {
        let mut wall: Option<Nanos> = None;
        let mut consider_wall = |at: Nanos| {
            wall = Some(wall.map_or(at, |b: Nanos| b.min(at)));
        };
        let mut exec: Option<Cycles> = None;
        if let Some((arrival, _)) = self.pending.peek() {
            consider_wall(arrival);
        }
        if next != self.idle {
            let st = &threads[next];
            if st.is_rt() && st.job_active {
                exec = Some(st.remaining_cycles.max(1));
            } else if !st.is_rt() && !self.nonrt.is_empty() {
                // Round-robin preemption only matters with competition.
                exec = Some(st.quantum_left.max(1));
            }
        }
        if self.cfg.mode == SchedMode::Lazy {
            for (_, tid) in self.rt_run.iter() {
                let st = &threads[tid];
                if !st.job_started {
                    let remaining_ns =
                        self.freq.cycles_to_ns(st.remaining_cycles) + 1 + self.cfg.lazy_margin_ns;
                    let latest = st.deadline_ns.saturating_sub(remaining_ns);
                    consider_wall(latest.max(now_ns + 1));
                }
            }
        }
        // A preempted-but-queued RT thread whose deadline could pass
        // unnoticed: wake at the earliest queued deadline as a backstop.
        if let Some((deadline, _)) = self.rt_run.peek() {
            if next == self.idle || !threads[next].is_rt() {
                consider_wall(deadline.max(now_ns + 1));
            }
        }
        if self.layers_active {
            let layers = &self.cfg.layers;
            // A finite-layer thread must be re-evaluated no later than its
            // bucket exhaustion, bounding the overdraft to one timer
            // quantum.
            if next != self.idle {
                let l = layers.layer_of(&threads[next].constraints);
                if !layers.spec(l).exempt() {
                    consider_wall(now_ns + self.layer_buckets[l].max(1) as u64);
                }
            }
            // A skipped (throttled) thread becomes eligible again at the
            // next replenish boundary; without this wake-up an otherwise
            // idle CPU would sleep through it.
            if self.throttle_skipped {
                consider_wall((now_ns / layers.replenish_ns + 1) * layers.replenish_ns);
            }
        }
        (exec, wall)
    }

    /// Budget (cycles) available for inline size-tagged tasks: the gap
    /// until the next RT arrival when no RT job is runnable (§3.1). The
    /// currently dispatched thread counts as runnable RT work.
    pub fn inline_task_budget(&self, now_ns: Nanos, threads: &[SchedThread]) -> Cycles {
        if !self.rt_run.is_empty() {
            return 0;
        }
        if self.current != self.idle {
            let st = &threads[self.current];
            if st.is_rt() && st.job_active {
                return 0;
            }
        }
        match self.pending.peek() {
            Some((arrival, _)) => self.freq.ns_to_cycles(arrival.saturating_sub(now_ns)),
            None => Cycles::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 64;

    fn mk() -> (LocalScheduler, Vec<SchedThread>) {
        let cfg = SchedConfig::default();
        // tid 0 is the idle thread by convention in these tests.
        let sched = LocalScheduler::new(0, 0, cfg, Freq::phi(), CAP);
        let threads: Vec<SchedThread> = (0..8).map(|_| SchedThread::new_aperiodic()).collect();
        (sched, threads)
    }

    /// Admit a periodic thread at wall time `now` and queue it.
    fn admit_periodic(
        s: &mut LocalScheduler,
        ts: &mut [SchedThread],
        tid: ThreadId,
        now: Nanos,
        phase: Nanos,
        period: Nanos,
        slice: Nanos,
    ) {
        let c = Constraints::Periodic {
            phase,
            period,
            slice,
        };
        s.change_constraints(tid, &mut ts[tid], c, now, true)
            .unwrap();
        s.enqueue(tid, &mut ts[tid], now);
    }

    #[test]
    fn idle_when_nothing_ready() {
        let (mut s, mut ts) = mk();
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 0);
        assert!(!d.next_is_rt);
    }

    #[test]
    fn periodic_thread_waits_for_phase_then_runs() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        // Before the first arrival (phase 100 us): idle, timer at arrival.
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 0);
        assert_eq!(d.timer_wall_ns, Some(100_000));
        assert_eq!(d.timer_exec_cycles, None);
        // At the arrival: runs, timer at slice end.
        let d = s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 1);
        assert!(d.next_is_rt);
        assert!(d.switched);
        assert_eq!(
            d.timer_exec_cycles.unwrap(),
            Freq::phi().ns_to_cycles_ceil(50_000)
        );
    }

    #[test]
    fn slice_exhaustion_completes_job_and_reschedules() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        s.invoke(100_000, &mut ts, InvokeReason::Timer, false); // dispatch
                                                                // Burn the whole slice; completion lands before the 200 us deadline.
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        let d = s.invoke(150_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(s.last_outcome, Some(JobOutcome::Met));
        assert_eq!(d.next, 0, "back to idle after the slice");
        assert_eq!(ts[1].stats.met, 1);
        // Next arrival at 200_000.
        assert_eq!(d.timer_wall_ns, Some(200_000));
    }

    #[test]
    fn late_completion_counts_a_miss() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        // Completion observed 5 us after the 200_000 deadline.
        s.invoke(205_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(s.last_outcome, Some(JobOutcome::Missed { late_ns: 5_000 }));
        assert_eq!(ts[1].stats.missed, 1);
        assert!((ts[1].stats.miss_rate() - 1.0).abs() < 1e-12);
        // The thread resynchronizes to a future arrival.
        assert!(ts[1].next_arrival_ns > 205_000);
    }

    #[test]
    fn edf_order_among_two_rt_threads() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 0, 200_000, 20_000); // deadline 200k
        admit_periodic(&mut s, &mut ts, 2, 0, 0, 100_000, 20_000); // deadline 100k
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 2, "earlier deadline must win");
        // Thread 2's job completes; thread 1 takes over.
        let c = ts[2].remaining_cycles;
        s.account(&mut ts[2], c);
        let d = s.invoke(20_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(d.next, 1);
    }

    #[test]
    fn rt_preempts_aperiodic() {
        let (mut s, mut ts) = mk();
        // Aperiodic thread 3 running.
        s.enqueue(3, &mut ts[3], 0);
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 3);
        // Now an RT thread arrives (phase 50 us).
        admit_periodic(&mut s, &mut ts, 1, 0, 50_000, 100_000, 50_000);
        let d = s.invoke(50_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(d.next, 1);
        assert!(d.switched);
    }

    #[test]
    fn aperiodic_round_robin_rotates_on_quantum() {
        let (mut s, mut ts) = mk();
        for tid in [3, 4] {
            s.enqueue(tid, &mut ts[tid], 0);
        }
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 3);
        // Quantum: 100 ms at 10 Hz.
        assert_eq!(
            d.timer_exec_cycles.unwrap(),
            Freq::phi().ns_to_cycles_ceil(100_000_000)
        );
        // Burn the quantum; the other thread takes over.
        let c = ts[3].quantum_left;
        s.account(&mut ts[3], c);
        let d = s.invoke(100_000_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(d.next, 4);
    }

    #[test]
    fn sporadic_decays_to_aperiodic_after_burst() {
        let (mut s, mut ts) = mk();
        let c = Constraints::sporadic(5_000, 50_000).build();
        s.change_constraints(1, &mut ts[1], c, 0, true).unwrap();
        s.enqueue(1, &mut ts[1], 0);
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 1);
        assert!(d.next_is_rt);
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        let d = s.invoke(5_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(s.last_outcome, Some(JobOutcome::Met));
        assert!(!ts[1].is_rt(), "burst done: aperiodic now");
        assert_eq!(d.next, 1, "still the only runnable thread");
        assert!(!d.next_is_rt);
    }

    #[test]
    fn blocking_forfeits_the_job() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        // The thread blocks mid-job.
        let d = s.invoke(120_000, &mut ts, InvokeReason::Block, false);
        assert_eq!(d.next, 0);
        assert!(ts[1].job_blocked);
        // It wakes later in the same period and is re-queued.
        s.enqueue(1, &mut ts[1], 150_000);
        let d = s.invoke(150_000, &mut ts, InvokeReason::Wake, false);
        assert_eq!(d.next, 1);
        // Completing now records a forfeit, not a met/miss.
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        s.invoke(199_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(s.last_outcome, Some(JobOutcome::Forfeited));
        assert_eq!(ts[1].stats.met, 0);
        assert_eq!(ts[1].stats.missed, 0);
    }

    #[test]
    fn lazy_mode_delays_dispatch_to_latest_start() {
        let (mut s, mut ts) = mk();
        s.cfg.mode = SchedMode::Lazy;
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 20_000);
        // At the arrival, lazy does NOT dispatch: the latest start for a
        // 20 us slice due at 200 us is ~180 us minus the 15 us margin.
        let d = s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 0, "lazy must idle until the latest start");
        let timer_ns = d.timer_wall_ns.unwrap();
        assert!(
            (163_000..=165_100).contains(&timer_ns),
            "timer at {timer_ns}"
        );
        // Past the latest start it dispatches.
        let d = s.invoke(165_200, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 1);
    }

    #[test]
    fn eager_mode_dispatches_immediately() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 20_000);
        let d = s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 1, "eager runs a runnable RT job at once");
    }

    #[test]
    fn inline_task_budget_is_gap_to_next_arrival() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 0, 1_000_000, 100_000);
        s.invoke(0, &mut ts, InvokeReason::Timer, false);
        // Job active: no inline budget.
        assert_eq!(s.inline_task_budget(0, &ts), 0);
        // Complete the job; budget is the gap to the next arrival.
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        s.invoke(100_000, &mut ts, InvokeReason::Timer, true);
        let budget = s.inline_task_budget(100_000, &ts);
        assert_eq!(budget, Freq::phi().ns_to_cycles(900_000));
    }

    #[test]
    fn dequeue_removes_everywhere() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 0, 100_000, 10_000);
        assert!(s.resident() > 1);
        s.dequeue(1);
        let d = s.invoke(200_000, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 0);
        assert!(!d.timer_armed());
    }

    #[test]
    fn change_constraints_failure_keeps_old_class() {
        let (mut s, mut ts) = mk();
        let big = Constraints::periodic(100_000, 70_000).build();
        s.change_constraints(1, &mut ts[1], big, 0, true).unwrap();
        let too_big = Constraints::periodic(100_000, 90_000).build();
        let err = s.change_constraints(2, &mut ts[2], too_big, 0, true);
        assert!(err.is_err());
        assert!(!ts[2].is_rt());
        assert_eq!(ts[1].constraints, big);
        // The ledger still reflects only the first admission.
        assert_eq!(s.load.periodic_count(), 1);
    }

    #[test]
    fn sporadic_overrun_demotes_when_policy_enabled() {
        use crate::admission::DegradePolicy;
        let (mut s, mut ts) = mk();
        s.cfg.degrade = DegradePolicy::enabled();
        let c = Constraints::sporadic(5_000, 50_000).build();
        s.change_constraints(1, &mut ts[1], c, 0, true).unwrap();
        s.enqueue(1, &mut ts[1], 0);
        let d = s.invoke(0, &mut ts, InvokeReason::Timer, false);
        assert_eq!(d.next, 1);
        // Burn only part of the burst; the deadline (50 us) passes with
        // work outstanding — interference stretched the burst.
        let c = ts[1].remaining_cycles / 2;
        s.account(&mut ts[1], c);
        let d = s.invoke(60_000, &mut ts, InvokeReason::Timer, true);
        assert!(!ts[1].is_rt(), "blown burst must stop being RT");
        assert_eq!(s.stats.degrade.sporadic_demotions, 1);
        assert_eq!(s.load.sporadic_util_ppm(), 0, "reservation released");
        assert_eq!(d.next, 1, "still runnable, now aperiodic");
        assert!(!d.next_is_rt);
    }

    #[test]
    fn consecutive_misses_widen_then_demote_periodic() {
        use crate::admission::DegradePolicy;
        let (mut s, mut ts) = mk();
        s.cfg.degrade = DegradePolicy {
            enabled: true,
            miss_threshold: 1,
            widen_pct: 25,
            max_widen: 1,
        };
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        // First job misses: completion 5 us past the 200 us deadline.
        s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        s.invoke(205_000, &mut ts, InvokeReason::Timer, true);
        assert_eq!(s.last_outcome, Some(JobOutcome::Missed { late_ns: 5_000 }));
        // Degradation widened the period by 25%.
        assert_eq!(
            ts[1].constraints,
            Constraints::Periodic {
                phase: 100_000,
                period: 125_000,
                slice: 50_000,
            }
        );
        assert_eq!(ts[1].widen_rounds, 1);
        assert_eq!(s.stats.degrade.periodic_widenings, 1);
        // The next job misses too; the single widening round is spent, so
        // the thread is demoted to aperiodic and the ledger is emptied.
        let next = ts[1].next_arrival_ns;
        s.invoke(next, &mut ts, InvokeReason::Timer, false);
        let c = ts[1].remaining_cycles;
        s.account(&mut ts[1], c);
        s.invoke(next + 130_000, &mut ts, InvokeReason::Timer, true);
        assert!(!ts[1].is_rt());
        assert_eq!(s.stats.degrade.periodic_demotions, 1);
        assert_eq!(s.load.periodic_count(), 0);
    }

    #[test]
    fn degradation_disabled_by_default_leaves_classes_alone() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        for k in 1..=5u64 {
            let now = ts[1].next_arrival_ns;
            s.invoke(now, &mut ts, InvokeReason::Timer, false);
            let c = ts[1].remaining_cycles;
            s.account(&mut ts[1], c);
            // Complete every job late.
            s.invoke(now + 105_000, &mut ts, InvokeReason::Timer, true);
            assert_eq!(ts[1].stats.missed, k);
        }
        assert!(ts[1].is_rt(), "no demotion without the policy");
        assert_eq!(s.stats.degrade.total(), 0);
        assert_eq!(ts[1].consecutive_misses, 5);
    }

    #[test]
    fn dispatch_counter_increments_on_switch_in() {
        let (mut s, mut ts) = mk();
        admit_periodic(&mut s, &mut ts, 1, 0, 100_000, 100_000, 50_000);
        s.invoke(100_000, &mut ts, InvokeReason::Timer, false);
        assert_eq!(ts[1].stats.dispatches, 1);
        // Staying on the CPU across an invocation is not a new dispatch.
        s.invoke(110_000, &mut ts, InvokeReason::Kick, true);
        assert_eq!(ts[1].stats.dispatches, 1);
    }
}
