//! Mixed real-time scenarios on one CPU: early job completion via
//! `WaitNextPeriod`, periodic + sporadic coexistence under EDF, and
//! reservations doing their job.

use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall, SysResult};
use nautix_rt::{Node, NodeConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn node(seed: u64) -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(seed);
    Node::new(cfg)
}

#[test]
fn wait_next_period_completes_the_job_early() {
    let mut node = node(1);
    // 1 ms period, 400 µs slice, but the thread only needs ~100 µs per
    // period and parks with WaitNextPeriod.
    let prog = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 400_000).build(),
            ))
        } else if n % 2 == 1 {
            Action::Compute(130_000) // 100 µs of real work
        } else {
            Action::Call(SysCall::WaitNextPeriod)
        }
    });
    let tid = node.spawn_on(1, "early", Box::new(prog)).unwrap();
    node.run_for_ns(50_000_000);
    let st = node.thread_state(tid);
    assert!(st.stats.arrivals >= 45, "arrivals {}", st.stats.arrivals);
    assert_eq!(st.stats.missed, 0);
    // Jobs complete early and count as met; the thread never burns its
    // full 40% — roughly 10% of the CPU over the run.
    assert!(st.stats.met >= 45);
    let used = st.stats.executed_cycles as f64;
    let total = node.machine.now() as f64;
    let share = used / total;
    assert!(
        (0.05..0.20).contains(&share),
        "thread should use ~10% of the CPU, used {share}"
    );
}

#[test]
fn sporadic_burst_preempts_periodic_by_deadline_order() {
    let mut node = node(2);
    // A 30% periodic thread runs continuously.
    let periodic = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 300_000).build(),
            ))
        } else {
            Action::Compute(200_000)
        }
    });
    let p_tid = node.spawn_on(1, "periodic", Box::new(periodic)).unwrap();
    // A sporadic thread arrives later with a tight deadline that lands
    // before the periodic thread's; EDF must serve it first.
    let done = Rc::new(RefCell::new(None));
    let done2 = done.clone();
    let sporadic = FnProgram::new(move |cx, n| match n {
        0 => Action::Call(SysCall::SleepNs(5_300_000)),
        1 => Action::Call(SysCall::ChangeConstraints(
            Constraints::sporadic(
                30_000,  // needs 30 µs ...
                300_000, // ... within 300 µs: 10%, exactly the reservation
            )
            .build(),
        )),
        2 => {
            assert_eq!(cx.result, SysResult::Admission(Ok(())));
            Action::Compute(39_000) // the burst body
        }
        _ => {
            *done2.borrow_mut() = Some(cx.now_ns);
            Action::Exit
        }
    });
    let s_tid = node.spawn_on(1, "sporadic", Box::new(sporadic)).unwrap();
    node.run_for_ns(20_000_000);
    let s = node.thread_state(s_tid);
    assert_eq!(s.stats.met, 1, "the burst must meet its deadline");
    assert_eq!(s.stats.missed, 0);
    let p = node.thread_state(p_tid);
    assert_eq!(p.stats.missed, 0, "the periodic thread keeps its guarantee");
    // And the burst really did finish within its window.
    let finished = done.borrow().expect("sporadic finished");
    assert!(finished < 5_300_000 + 1_000_000, "finished at {finished}");
}

#[test]
fn sporadic_reservation_rejects_when_exhausted() {
    let mut node = node(3);
    let results = Rc::new(RefCell::new(Vec::new()));
    for i in 0..3 {
        let r2 = results.clone();
        // Each burst wants 6% of the CPU; the 10% reservation fits one.
        let prog = FnProgram::new(move |cx, n| match n {
            0 => Action::Call(SysCall::ChangeConstraints(
                Constraints::sporadic(60_000, 1_000_000).build(),
            )),
            1 => {
                r2.borrow_mut().push((i, cx.result));
                Action::Compute(78_000)
            }
            _ => Action::Exit,
        });
        node.spawn_on(1, &format!("burst{i}"), Box::new(prog))
            .unwrap();
    }
    node.run_until_quiescent();
    let rs = results.borrow();
    assert_eq!(rs.len(), 3);
    let ok = rs
        .iter()
        .filter(|(_, r)| *r == SysResult::Admission(Ok(())))
        .count();
    assert_eq!(
        ok, 1,
        "the 10% sporadic reservation holds one 6% burst at a time: {rs:?}"
    );
}
