//! Parallel execution plans: what a team runs.
//!
//! A [`Plan`] is a sequence of regions — parallel loops, reductions, and
//! serial sections — the analogue of an OpenMP program's structure after
//! the compiler has outlined its regions. Loop iterations carry a cost
//! profile so load imbalance (and the scheduling policies that fight it)
//! can be expressed.

use nautix_des::Cycles;

/// How a parallel loop's iterations are distributed over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopSchedule {
    /// Contiguous equal blocks, decided up front (OpenMP `schedule(static)`).
    Static,
    /// Workers grab fixed-size chunks from a shared counter
    /// (`schedule(dynamic, chunk)`), paying one contended RMW per grab.
    Dynamic {
        /// Iterations per grab.
        chunk: u64,
    },
}

/// Per-iteration cost profile of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostProfile {
    /// Every iteration costs the same.
    Uniform(Cycles),
    /// Iteration `i` costs `base + i * step` — a triangular imbalance.
    Linear {
        /// Cost of iteration 0.
        base: Cycles,
        /// Increment per iteration.
        step: Cycles,
    },
    /// Mostly `base`, but every `every`-th iteration costs `spike`.
    Spiky {
        /// Cost of ordinary iterations.
        base: Cycles,
        /// Distance between spikes (>= 1).
        every: u64,
        /// Cost of a spike iteration.
        spike: Cycles,
    },
}

impl CostProfile {
    /// Cost of iteration `i`, cycles.
    pub fn cost(&self, i: u64) -> Cycles {
        match *self {
            CostProfile::Uniform(c) => c,
            CostProfile::Linear { base, step } => base + i * step,
            CostProfile::Spiky { base, every, spike } => {
                if every > 0 && i.is_multiple_of(every) {
                    spike
                } else {
                    base
                }
            }
        }
    }

    /// Total cost of iterations `[lo, hi)`.
    pub fn range_cost(&self, lo: u64, hi: u64) -> Cycles {
        match *self {
            CostProfile::Uniform(c) => (hi - lo) * c,
            CostProfile::Linear { base, step } => {
                let n = hi - lo;
                // sum_{i=lo}^{hi-1} (base + i*step)
                n * base + step * (lo + hi - 1) * n / 2
            }
            CostProfile::Spiky { base, every, spike } => {
                if every == 0 {
                    return (hi - lo) * base;
                }
                let spikes = (lo..hi).filter(|i| i % every == 0).count() as u64;
                (hi - lo - spikes) * base + spikes * spike
            }
        }
    }

    /// Total cost of the whole loop `[0, items)`.
    pub fn total_cost(&self, items: u64) -> Cycles {
        self.range_cost(0, items)
    }
}

/// One region of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// `#pragma omp parallel for`: `items` iterations with the given cost
    /// profile, distributed per `schedule`, closed by a team barrier.
    ParallelFor {
        /// Iteration count.
        items: u64,
        /// Per-iteration cost.
        profile: CostProfile,
        /// Distribution policy.
        schedule: LoopSchedule,
    },
    /// A parallel sum-reduction: like a uniform loop, but each worker also
    /// folds its partial into a shared accumulator (one contended RMW),
    /// closed by a barrier; the result is checked by the harness.
    ReduceSum {
        /// Iteration count; iteration `i` contributes `i`.
        items: u64,
        /// Per-iteration compute cost.
        cost: Cycles,
    },
    /// A serial section: worker 0 computes while the rest wait at the
    /// closing barrier (Amdahl's overhead made explicit).
    Serial {
        /// The serial computation's cost.
        cost: Cycles,
    },
}

impl Region {
    /// Ideal (perfectly balanced, zero-overhead) parallel cost on
    /// `workers` CPUs, in cycles.
    pub fn ideal_cost(&self, workers: u64) -> Cycles {
        match *self {
            Region::ParallelFor { items, profile, .. } => {
                profile.total_cost(items).div_ceil(workers)
            }
            Region::ReduceSum { items, cost } => (items * cost).div_ceil(workers),
            Region::Serial { cost } => cost,
        }
    }
}

/// A sequence of regions.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// The regions, in program order.
    pub regions: Vec<Region>,
}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Append a parallel loop.
    pub fn parallel_for(
        mut self,
        items: u64,
        profile: CostProfile,
        schedule: LoopSchedule,
    ) -> Self {
        self.regions.push(Region::ParallelFor {
            items,
            profile,
            schedule,
        });
        self
    }

    /// Append a sum reduction.
    pub fn reduce_sum(mut self, items: u64, cost: Cycles) -> Self {
        self.regions.push(Region::ReduceSum { items, cost });
        self
    }

    /// Append a serial section.
    pub fn serial(mut self, cost: Cycles) -> Self {
        self.regions.push(Region::Serial { cost });
        self
    }

    /// Ideal parallel cost of the whole plan on `workers` CPUs.
    pub fn ideal_cost(&self, workers: u64) -> Cycles {
        self.regions.iter().map(|r| r.ideal_cost(workers)).sum()
    }

    /// Total serial cost of the plan (one CPU, zero overhead).
    pub fn serial_cost(&self) -> Cycles {
        self.regions.iter().map(|r| r.ideal_cost(1)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs() {
        let p = CostProfile::Uniform(10);
        assert_eq!(p.cost(0), 10);
        assert_eq!(p.cost(99), 10);
        assert_eq!(p.range_cost(5, 15), 100);
        assert_eq!(p.total_cost(100), 1000);
    }

    #[test]
    fn linear_costs_match_direct_sum() {
        let p = CostProfile::Linear { base: 7, step: 3 };
        for (lo, hi) in [(0u64, 10u64), (5, 6), (13, 29), (0, 1)] {
            let direct: u64 = (lo..hi).map(|i| p.cost(i)).sum();
            assert_eq!(p.range_cost(lo, hi), direct, "range [{lo},{hi})");
        }
    }

    #[test]
    fn spiky_costs_match_direct_sum() {
        let p = CostProfile::Spiky {
            base: 5,
            every: 7,
            spike: 100,
        };
        for (lo, hi) in [(0u64, 30u64), (6, 8), (7, 7), (1, 50)] {
            let direct: u64 = (lo..hi).map(|i| p.cost(i)).sum();
            assert_eq!(p.range_cost(lo, hi), direct, "range [{lo},{hi})");
        }
    }

    #[test]
    fn plan_builder_and_ideal_costs() {
        let plan = Plan::new()
            .parallel_for(100, CostProfile::Uniform(10), LoopSchedule::Static)
            .serial(500)
            .reduce_sum(40, 5);
        assert_eq!(plan.regions.len(), 3);
        // 1000/4 + 500 + 200/4
        assert_eq!(plan.ideal_cost(4), 250 + 500 + 50);
        assert_eq!(plan.serial_cost(), 1000 + 500 + 200);
    }

    #[test]
    fn serial_region_cost_is_worker_independent() {
        let r = Region::Serial { cost: 777 };
        assert_eq!(r.ideal_cost(1), 777);
        assert_eq!(r.ideal_cost(64), 777);
    }
}
