//! # nautix — hard real-time scheduling for parallel run-time systems
//!
//! A faithful, simulator-backed reproduction of
//! *Hard Real-time Scheduling for Parallel Run-time Systems*
//! (Dinda, Wang, Wang, Beauchene, Hetland — HPDC 2018).
//!
//! This facade crate re-exports the workspace's layers under one roof:
//!
//! * [`des`] — deterministic discrete-event engine,
//! * [`hw`] — the x64 shared-memory node model (TSCs, APICs, IPIs, SMIs),
//! * [`kernel`] — the Nautilus-like kernel substrate (threads, queues,
//!   buddy allocator, tasks),
//! * [`groups`] — thread groups and their coordination primitives,
//! * [`rt`] — the paper's contribution: the hard real-time scheduler,
//!   admission control, time synchronization, and gang-scheduled groups,
//! * [`bsp`] — the bulk-synchronous-parallel microbenchmark of §6,
//! * [`runtime`] — a fork-join (OpenMP-style) data-parallel run-time on
//!   top of the gang scheduler (§8's direction, implemented).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use nautix_bsp as bsp;
pub use nautix_des as des;
pub use nautix_groups as groups;
pub use nautix_hw as hw;
pub use nautix_kernel as kernel;
pub use nautix_rt as rt;
pub use nautix_runtime as runtime;

/// Commonly used items, for `use nautix::prelude::*`.
pub mod prelude {
    pub use nautix_des::{Cycles, Freq, Nanos};
    pub use nautix_hw::{CostModel, MachineConfig, Platform};
    pub use nautix_kernel::{Action, Program, ResumeCx, SysCall, ThreadId};
    pub use nautix_rt::{AdmissionPolicy, Constraints, Node, NodeConfig, SchedConfig};
}
