//! Ablation: admission policies — EDF bound, RM bound, hyperperiod
//! simulation with overhead accounting (§3.2).

use nautix_bench::{ablations, banner, out_dir, write_csv};

fn main() {
    banner("Ablation: admission policy acceptance matrix");
    let rows = ablations::admission_policy_matrix();
    println!("constraint_set,edf_bound,rm_bound,hyperperiod_sim");
    for (label, edf, rm, hp) in &rows {
        println!("{},{},{},{}", label, edf, rm, hp);
    }
    write_csv(
        &out_dir().join("abl_admission_policy.csv"),
        &["constraint_set", "edf_bound", "rm_bound", "hyperperiod_sim"],
        rows.iter()
            .map(|(l, e, r, h)| vec![l.to_string(), e.to_string(), r.to_string(), h.to_string()]),
    );
    println!("wrote {:?}", out_dir().join("abl_admission_policy.csv"));
}
