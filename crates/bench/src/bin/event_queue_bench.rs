//! Before/after benchmark for the event-queue backends: binary heap vs
//! hierarchical timing wheel.
//!
//! Two sections, both run on each backend with identical inputs:
//!
//! * **Microbenchmarks** of the queue in isolation — timer-shaped
//!   insert/pop churn, insert-then-cancel (the re-arm storm shape),
//!   cascade-heavy advancement across level boundaries, and batched
//!   same-instant drains — written to `results/event_queue.csv`.
//! * **End-to-end** single-thread miss-rate trials (the Figure 6 workload,
//!   the hot path of `repro_all`) with the backend pinned via
//!   `MachineConfig::with_queue`, written to `BENCH_wheel.json` in the
//!   established report format together with the microbench totals.
//!
//! Pass `--quick` for a fast advisory run (CI); the default sizes give
//! stable numbers for EXPERIMENTS.md.

use nautix_bench::harness::{HarnessStats, NodePool};
use nautix_bench::{f, out_dir, write_csv, BenchReport};
use nautix_des::{EventQueue, QueueKind};
use nautix_hw::{MachineConfig, Platform};
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::NodeConfig;
use std::time::Instant;

/// Deterministic xorshift64* for workload shapes (never the sim's RNG).
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0 % bound
    }
}

/// One microbench measurement.
struct Micro {
    workload: &'static str,
    ops: u64,
    wall_ns: u64,
}

impl Micro {
    fn ns_per_op(&self) -> f64 {
        self.wall_ns as f64 / self.ops as f64
    }
    fn mops(&self) -> f64 {
        self.ops as f64 * 1e3 / self.wall_ns as f64
    }
}

fn time<T>(body: impl FnOnce() -> T) -> (T, u64) {
    let t0 = Instant::now();
    let out = body();
    (out, t0.elapsed().as_nanos() as u64)
}

/// Timer-shaped steady-state churn: a standing backlog with one insert and
/// one pop per iteration, deltas inside the wheel's lower levels.
fn micro_insert_pop(kind: QueueKind, iters: u64) -> Micro {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = Rng(0x5EED_0001);
    for i in 0..1024u64 {
        q.schedule(1 + rng.next(1 << 14), i);
    }
    let (_, wall_ns) = time(|| {
        let mut acc = 0u64;
        for i in 0..iters {
            q.schedule(q.now() + 1 + rng.next(1 << 14), i);
            let (_, _, p) = q.pop().unwrap();
            acc = acc.wrapping_add(p);
        }
        acc
    });
    Micro {
        workload: "insert_pop",
        ops: iters * 2,
        wall_ns,
    }
}

/// The re-arm storm shape: schedule then immediately cancel, against a
/// standing backlog so the cancelled event is interior, not the head.
fn micro_insert_cancel(kind: QueueKind, iters: u64) -> Micro {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = Rng(0x5EED_0002);
    for i in 0..1024u64 {
        q.schedule(1 + rng.next(1 << 20), i);
    }
    let (_, wall_ns) = time(|| {
        for i in 0..iters {
            let id = q.schedule(q.now() + 1 + rng.next(1 << 20), i);
            assert!(q.cancel(id));
        }
    });
    Micro {
        workload: "insert_cancel",
        ops: iters * 2,
        wall_ns,
    }
}

/// Cascade-heavy: deltas spanning every wheel level up to the horizon, then
/// a full drain that pays the level-by-level redistribution.
fn micro_cascade(kind: QueueKind, n: u64) -> Micro {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = Rng(0x5EED_0003);
    let (_, wall_ns) = time(|| {
        for i in 0..n {
            let span = [1u64 << 8, 1 << 16, 1 << 24, 1 << 31][(i % 4) as usize];
            q.schedule(q.now() + 1 + rng.next(span), i);
        }
        let mut acc = 0u64;
        while let Some((t, _, _)) = q.pop() {
            acc = acc.wrapping_add(t);
        }
        acc
    });
    Micro {
        workload: "cascade",
        ops: n * 2,
        wall_ns,
    }
}

/// Batched same-instant drains: bursts of 8 events per instant consumed
/// with `pop_batch`, the Machine pump's access pattern.
fn micro_pop_batch(kind: QueueKind, instants: u64) -> Micro {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    let mut rng = Rng(0x5EED_0004);
    let burst = 8u64;
    let (_, wall_ns) = time(|| {
        let mut acc = 0u64;
        for i in 0..instants {
            let t = q.now() + 1 + rng.next(1 << 12);
            for j in 0..burst {
                q.schedule(t, i * burst + j);
            }
            q.pop_batch(|_, _, p| acc = acc.wrapping_add(p));
        }
        acc
    });
    Micro {
        workload: "pop_batch",
        ops: instants * burst * 2,
        wall_ns,
    }
}

fn run_micros(kind: QueueKind, scale: u64) -> Vec<Micro> {
    vec![
        micro_insert_pop(kind, 1_000_000 * scale),
        micro_insert_cancel(kind, 1_000_000 * scale),
        micro_cascade(kind, 500_000 * scale),
        micro_pop_batch(kind, 125_000 * scale),
    ]
}

/// One end-to-end miss-rate trial (the Figure 6 shape) with the queue
/// backend pinned explicitly, bypassing the `NAUTIX_QUEUE` env hatch.
fn missrate_trial(
    pool: &mut NodePool,
    kind: QueueKind,
    period_ns: u64,
    slice_ns: u64,
    jobs: u64,
    seed: u64,
) -> u64 {
    let mut cfg = NodeConfig::for_machine(
        MachineConfig::for_platform(Platform::Phi)
            .with_cpus(2)
            .with_seed(seed)
            .with_queue(kind),
    );
    cfg.sched.admission_enabled = false;
    cfg.sched.min_period_ns = 100;
    cfg.sched.min_slice_ns = 50;
    cfg.sched.granularity_ns = 1;
    let node = pool.node(cfg);
    let prog = FnProgram::new(move |_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(Constraints::Periodic {
                phase: period_ns,
                period: period_ns,
                slice: slice_ns,
            }))
        } else {
            Action::Compute(100_000)
        }
    });
    node.spawn_on(1, "probe", Box::new(prog)).unwrap();
    node.run_for_ns(period_ns.saturating_mul(jobs + 20));
    node.machine.events_processed()
}

/// Single-thread end-to-end section for one backend: the Figure 6 period
/// sweep at two slice ratios, pooled like `repro_all` runs it.
fn end_to_end(kind: QueueKind, jobs: u64) -> HarnessStats {
    let mut pool = NodePool::new();
    let mut trial_wall_secs = Vec::new();
    let mut trial_events = Vec::new();
    let t0 = Instant::now();
    for period_us in [1000u64, 100, 50, 20, 10] {
        for slice_pct in [30u64, 60] {
            let period_ns = period_us * 1000;
            let slice_ns = period_ns * slice_pct / 100;
            let start = Instant::now();
            let events = missrate_trial(&mut pool, kind, period_ns, slice_ns, jobs, 42);
            trial_wall_secs.push(start.elapsed().as_secs_f64());
            trial_events.push(events);
        }
    }
    HarnessStats {
        trials: trial_wall_secs.len(),
        threads: 1,
        wall_secs: t0.elapsed().as_secs_f64(),
        cpu_secs: trial_wall_secs.iter().sum(),
        events: trial_events.iter().sum(),
        trial_wall_secs,
        trial_events,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, jobs) = if quick { (1, 400) } else { (4, 60_000) };
    let kinds = [QueueKind::Heap, QueueKind::Wheel];

    println!(
        "event-queue microbenchmarks ({} scale)",
        if quick { "quick" } else { "full" }
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut micro_summary: Vec<(QueueKind, Vec<Micro>)> = Vec::new();
    for kind in kinds {
        let micros = run_micros(kind, scale);
        for m in &micros {
            println!(
                "  {:>5} {:>13}: {:>7} ns/op ({} Mops/s over {} ops)",
                kind.label(),
                m.workload,
                f(m.ns_per_op()),
                f(m.mops()),
                m.ops
            );
            rows.push(vec![
                kind.label().to_string(),
                m.workload.to_string(),
                m.ops.to_string(),
                m.wall_ns.to_string(),
                f(m.ns_per_op()),
                f(m.mops()),
            ]);
        }
        micro_summary.push((kind, micros));
    }
    let csv = out_dir().join("event_queue.csv");
    write_csv(
        &csv,
        &[
            "kind",
            "workload",
            "ops",
            "wall_ns",
            "ns_per_op",
            "mops_per_sec",
        ],
        rows,
    );
    println!("wrote {csv:?}");

    println!("\nend-to-end miss-rate trials (single thread, {jobs} jobs/point)");
    let mut report = BenchReport::new();
    let mut per_kind: Vec<(QueueKind, f64)> = Vec::new();
    for kind in kinds {
        let stats = end_to_end(kind, jobs);
        println!(
            "  {:>5}: {} events in {}s -> {} events/s",
            kind.label(),
            stats.events,
            f(stats.wall_secs),
            f(stats.events_per_sec())
        );
        per_kind.push((kind, stats.events_per_sec()));
        report.add(&format!("missrate_{}", kind.label()), stats);
    }
    for (kind, micros) in micro_summary {
        let ops: u64 = micros.iter().map(|m| m.ops).sum();
        let wall: u64 = micros.iter().map(|m| m.wall_ns).sum();
        report.add(
            &format!("micro_{}", kind.label()),
            HarnessStats {
                trials: micros.len(),
                threads: 1,
                wall_secs: wall as f64 / 1e9,
                cpu_secs: wall as f64 / 1e9,
                events: ops,
                trial_wall_secs: micros.iter().map(|m| m.wall_ns as f64 / 1e9).collect(),
                trial_events: micros.iter().map(|m| m.ops).collect(),
            },
        );
    }

    let heap = per_kind[0].1;
    let wheel = per_kind[1].1;
    // PR-5 single-thread baseline from CHANGES.md (heap backend, paper-scale
    // repro_all): the tentpole target is >=2x this.
    const PR5_BASELINE: f64 = 4_918_532.0;
    println!(
        "\nwheel vs heap: {}x; wheel vs PR-5 repro baseline ({} ev/s): {}x",
        f(wheel / heap),
        PR5_BASELINE as u64,
        f(wheel / PR5_BASELINE)
    );

    // Known tradeoff, tracked honestly rather than buried: the wheel wins
    // its microbenchmarks 2-3x, but at the Figure 6 workload's tiny
    // standing backlog (a handful of pending events) the per-event
    // constant factor can drop *below* the heap end-to-end — a 0.76x case
    // was measured on the fig6-only sweep in PR 6. Flag any run where the
    // wheel falls under 0.9x heap so the regression stays visible in the
    // committed report.
    const WHEEL_ADVISORY_FLOOR: f64 = 0.9;
    let ratio = wheel / heap;
    if ratio < WHEEL_ADVISORY_FLOOR {
        let msg = format!(
            "ADVISORY: wheel end-to-end throughput is {}x heap (< {WHEEL_ADVISORY_FLOOR}x) \
             on the tiny-backlog fig6 workload — known QueueKind::Wheel small-backlog \
             regression, see the QueueKind docs",
            f(ratio)
        );
        println!("{msg}");
        report.note(msg);
    } else {
        println!(
            "wheel end-to-end within advisory floor ({}x >= {WHEEL_ADVISORY_FLOOR}x heap)",
            f(ratio)
        );
    }

    let path = std::path::Path::new("BENCH_wheel.json");
    report.write(path);
    println!("wrote {path:?}");
}
