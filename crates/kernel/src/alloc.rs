//! Buddy-system physical memory allocation with NUMA zones.
//!
//! §2: "All memory management, including for NUMA, is explicit and
//! allocations are done with buddy system allocators that are selected
//! based on the target zone. For threads that are bound to specific CPUs,
//! essential thread (e.g., context, stack) and scheduler state is
//! guaranteed to always be in the most desirable zone."
//!
//! The node uses this allocator for thread stacks and scheduler state; the
//! KNL preset models the Phi's 16 GB MCDRAM + 96 GB DRAM split.

use std::collections::{BTreeSet, HashMap};

/// One buddy allocator over a contiguous address range.
#[derive(Debug)]
pub struct BuddyAllocator {
    base: usize,
    min_order: u32,
    max_order: u32,
    /// Free blocks per order, sorted by address for deterministic choice.
    free: Vec<BTreeSet<usize>>,
    /// Outstanding allocations: address -> order.
    allocated: HashMap<usize, u32>,
    bytes_allocated: usize,
}

impl BuddyAllocator {
    /// An allocator over `[base, base + 2^max_order)` handing out blocks
    /// no smaller than `2^min_order` bytes.
    pub fn new(base: usize, min_order: u32, max_order: u32) -> Self {
        assert!(min_order <= max_order && max_order < usize::BITS);
        assert!(
            base.is_multiple_of(1usize << max_order),
            "base must be aligned to the arena size"
        );
        let mut free: Vec<BTreeSet<usize>> = (0..=max_order).map(|_| BTreeSet::new()).collect();
        free[max_order as usize].insert(base);
        BuddyAllocator {
            base,
            min_order,
            max_order,
            free,
            allocated: HashMap::new(),
            bytes_allocated: 0,
        }
    }

    /// Total bytes managed.
    pub fn capacity(&self) -> usize {
        1usize << self.max_order
    }

    /// Bytes currently handed out (rounded to block sizes).
    pub fn used(&self) -> usize {
        self.bytes_allocated
    }

    /// Number of outstanding allocations.
    pub fn outstanding(&self) -> usize {
        self.allocated.len()
    }

    fn order_for(&self, size: usize) -> Option<u32> {
        if size == 0 {
            return None;
        }
        let order = size
            .next_power_of_two()
            .trailing_zeros()
            .max(self.min_order);
        if order > self.max_order {
            None
        } else {
            Some(order)
        }
    }

    /// Allocate a block of at least `size` bytes. Returns its address.
    pub fn alloc(&mut self, size: usize) -> Option<usize> {
        let want = self.order_for(size)?;
        // Find the smallest order with a free block.
        let mut have = want;
        while (have as usize) < self.free.len() && self.free[have as usize].is_empty() {
            have += 1;
        }
        if have > self.max_order {
            return None;
        }
        let addr = *self.free[have as usize].iter().next()?;
        self.free[have as usize].remove(&addr);
        // Split down to the wanted order.
        while have > want {
            have -= 1;
            let buddy = addr + (1usize << have);
            self.free[have as usize].insert(buddy);
        }
        debug_assert!(addr >= self.base);
        self.allocated.insert(addr, want);
        self.bytes_allocated += 1usize << want;
        Some(addr)
    }

    /// Free a previously allocated block, coalescing buddies upward.
    ///
    /// Panics on double free or an address that was never allocated: both
    /// are kernel bugs worth failing loudly on.
    pub fn free(&mut self, addr: usize) {
        let order = self
            .allocated
            .remove(&addr)
            .expect("free of unallocated address");
        self.bytes_allocated -= 1usize << order;
        let mut addr = addr;
        let mut order = order;
        while order < self.max_order {
            let buddy = self.base + ((addr - self.base) ^ (1usize << order));
            if self.free[order as usize].remove(&buddy) {
                addr = addr.min(buddy);
                order += 1;
            } else {
                break;
            }
        }
        self.free[order as usize].insert(addr);
    }

    /// True when no allocations are outstanding and the arena has fully
    /// coalesced back to one block.
    pub fn is_pristine(&self) -> bool {
        self.allocated.is_empty()
            && self.free[self.max_order as usize].len() == 1
            && self.free[..self.max_order as usize]
                .iter()
                .all(|s| s.is_empty())
    }
}

/// A NUMA memory zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// On-package high-bandwidth memory (the Phi's 16 GB MCDRAM).
    HighBandwidth,
    /// Conventional DRAM.
    Dram,
}

/// Per-zone buddy allocators with preferred-zone fallback.
#[derive(Debug)]
pub struct ZoneAllocator {
    hbm: BuddyAllocator,
    dram: BuddyAllocator,
    hbm_end: usize,
}

impl ZoneAllocator {
    /// A layout like the KNL testbed, scaled down so tests stay cheap:
    /// a "16 MB MCDRAM" at 0 and a "96 MB DRAM" above it, standing in for
    /// the testbed's 16 GB + 96 GB at a 1:4096 scale.
    pub fn knl_scaled() -> Self {
        // 16 MB HBM arena, 128 MB DRAM arena (nearest power of two >= 96).
        Self::new(24, 27)
    }

    /// Arenas of `2^hbm_order` and `2^dram_order` bytes.
    pub fn new(hbm_order: u32, dram_order: u32) -> Self {
        let hbm = BuddyAllocator::new(0, 12, hbm_order);
        let hbm_end = 1usize << hbm_order;
        // DRAM base must be aligned to its own arena size.
        let dram_base = (1usize << dram_order).max(hbm_end);
        let dram = BuddyAllocator::new(dram_base, 12, dram_order);
        ZoneAllocator { hbm, dram, hbm_end }
    }

    /// Allocate in the preferred zone, falling back to the other.
    pub fn alloc(&mut self, size: usize, prefer: Zone) -> Option<(usize, Zone)> {
        let (first, second, fz, sz) = match prefer {
            Zone::HighBandwidth => (
                &mut self.hbm,
                &mut self.dram,
                Zone::HighBandwidth,
                Zone::Dram,
            ),
            Zone::Dram => (
                &mut self.dram,
                &mut self.hbm,
                Zone::Dram,
                Zone::HighBandwidth,
            ),
        };
        if let Some(a) = first.alloc(size) {
            return Some((a, fz));
        }
        second.alloc(size).map(|a| (a, sz))
    }

    /// Free an address; the owning zone is recovered from the layout.
    pub fn free(&mut self, addr: usize) {
        if addr < self.hbm_end {
            self.hbm.free(addr);
        } else {
            self.dram.free(addr);
        }
    }

    /// Per-zone usage in bytes.
    pub fn used(&self, zone: Zone) -> usize {
        match zone {
            Zone::HighBandwidth => self.hbm.used(),
            Zone::Dram => self.dram.used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_and_frees_round_trip() {
        let mut b = BuddyAllocator::new(0, 4, 10); // 1 KiB arena, 16 B min
        let a = b.alloc(100).unwrap();
        assert_eq!(b.used(), 128);
        b.free(a);
        assert!(b.is_pristine());
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new(0, 4, 12);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for size in [16, 100, 64, 300, 17, 512] {
            let addr = b.alloc(size).unwrap();
            let len = size.next_power_of_two().max(16);
            for &(a, l) in &spans {
                assert!(
                    addr + len <= a || a + l <= addr,
                    "overlap: [{addr},{}) vs [{a},{})",
                    addr + len,
                    a + l
                );
            }
            spans.push((addr, len));
        }
    }

    #[test]
    fn exhaustion_returns_none_not_panic() {
        let mut b = BuddyAllocator::new(0, 4, 6); // 64 B arena
        assert!(b.alloc(64).is_some());
        assert!(b.alloc(16).is_none());
    }

    #[test]
    fn coalescing_restores_big_blocks() {
        let mut b = BuddyAllocator::new(0, 4, 8); // 256 B
        let xs: Vec<_> = (0..16).map(|_| b.alloc(16).unwrap()).collect();
        assert!(b.alloc(16).is_none());
        for x in xs {
            b.free(x);
        }
        assert!(b.is_pristine());
        assert!(
            b.alloc(256).is_some(),
            "full arena should be available again"
        );
    }

    #[test]
    fn oversized_requests_fail_cleanly() {
        let mut b = BuddyAllocator::new(0, 4, 8);
        assert!(b.alloc(257).is_none());
        assert!(b.alloc(0).is_none());
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(0, 4, 8);
        let a = b.alloc(16).unwrap();
        b.free(a);
        b.free(a);
    }

    #[test]
    fn zone_fallback_when_preferred_full() {
        let mut z = ZoneAllocator::new(13, 14); // 8 KiB HBM, 16 KiB DRAM
        let (_, zone) = z.alloc(8192, Zone::HighBandwidth).unwrap();
        assert_eq!(zone, Zone::HighBandwidth);
        let (_, zone) = z.alloc(8192, Zone::HighBandwidth).unwrap();
        assert_eq!(zone, Zone::Dram, "must fall back when HBM is full");
    }

    #[test]
    fn zone_free_routes_by_address() {
        let mut z = ZoneAllocator::new(13, 14);
        let (a, _) = z.alloc(4096, Zone::HighBandwidth).unwrap();
        let (d, _) = z.alloc(4096, Zone::Dram).unwrap();
        assert!(z.used(Zone::HighBandwidth) > 0);
        assert!(z.used(Zone::Dram) > 0);
        z.free(a);
        z.free(d);
        assert_eq!(z.used(Zone::HighBandwidth), 0);
        assert_eq!(z.used(Zone::Dram), 0);
    }

    #[test]
    fn knl_scaled_layout_has_disjoint_zones() {
        let mut z = ZoneAllocator::knl_scaled();
        let (h, _) = z.alloc(4096, Zone::HighBandwidth).unwrap();
        let (d, _) = z.alloc(4096, Zone::Dram).unwrap();
        assert!(h < d);
    }
}
