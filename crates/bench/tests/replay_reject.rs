//! Satellite 4: malformed replay inputs are rejected loudly.
//!
//! A replay file that parses into a *different* trial than it recorded
//! is worse than no replay at all, so the codec never default-fills:
//! every structural or value defect below must produce a parse error.

use nautix_bench::{Scenario, Workload};
use nautix_hw::Platform;

fn valid() -> String {
    Scenario::fault_mix(0.5, 100_000, 60, 50, 11).to_replay_string()
}

/// Swap one whole `key value` line for a replacement.
fn with_line(text: &str, key: &str, replacement: &str) -> String {
    let mut out = String::new();
    let mut hit = false;
    for line in text.lines() {
        if line.starts_with(&format!("{key} ")) {
            out.push_str(replacement);
            hit = true;
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    assert!(hit, "fixture has no `{key}` line");
    out
}

#[test]
fn unknown_version_is_rejected() {
    let t = valid().replace(nautix_bench::REPLAY_HEADER, "nautix-replay v1");
    let e = Scenario::from_replay_string(&t).unwrap_err();
    assert!(e.contains("unknown replay version"), "{e}");
    let e = Scenario::from_replay_string("garbage header\nname x\n").unwrap_err();
    assert!(e.contains("unknown replay version"), "{e}");
    assert!(Scenario::from_replay_string("").is_err());
}

#[test]
fn truncated_fault_plan_is_rejected() {
    let t = valid();
    let plan_line = t
        .lines()
        .find(|l| l.starts_with("machine.faults "))
        .unwrap()
        .to_string();
    assert!(plan_line.contains(';'), "fixture plan must be enabled");
    // Drop trailing fields one at a time: every truncation must error
    // mentioning the expected arity, never silently zero-fill.
    let mut line = plan_line.clone();
    while let Some((head, _)) = line.rsplit_once(';') {
        line = head.to_string();
        let e = Scenario::from_replay_string(&t.replace(&plan_line, &line)).unwrap_err();
        assert!(e.contains("fault plan") && e.contains("12"), "{e}");
    }
}

#[test]
fn bad_topology_is_rejected() {
    for bad in ["2×4", "0x4", "flat4", "", "axb"] {
        let t = with_line(
            &valid(),
            "machine.topology",
            &format!("machine.topology {bad}"),
        );
        let e = Scenario::from_replay_string(&t).unwrap_err();
        assert!(e.contains("machine.topology"), "`{bad}`: {e}");
    }
}

#[test]
fn bad_enums_and_numbers_are_rejected() {
    for (key, bad) in [
        ("machine.platform", "machine.platform knl"),
        ("machine.queue", "machine.queue ring"),
        ("machine.timer_mode", "machine.timer_mode periodic"),
        ("machine.cpus", "machine.cpus 0"),
        ("machine.cpus", "machine.cpus -3"),
        ("machine.seed", "machine.seed 0xAA"),
        ("sched.policy", "sched.policy cbs"),
        ("sched.mode", "sched.mode eager_ish"),
        ("sched.steal", "sched.steal random"),
        ("sched.engine", "sched.engine cached"),
        ("sched.degrade", "sched.degrade on:3:25"),
        ("sched.admission_enabled", "sched.admission_enabled yes"),
        ("node.laden", "node.laden 0,one"),
        ("node.sabotage_fifo", "node.sabotage_fifo maybe"),
        ("workload", "workload missrate:10:20"),
        ("workload", "workload bsp:1:2:3"),
        ("name", "name ../escape"),
    ] {
        let t = with_line(&valid(), key, bad);
        assert!(
            Scenario::from_replay_string(&t).is_err(),
            "`{bad}` must not parse"
        );
    }
}

#[test]
fn malformed_layer_lines_are_rejected() {
    // Codec v3 surface: every structural or validation defect in the
    // `sched.layers` table, the `node.sabotage_layer` arming flag, and
    // the `layer_mix` workload must be a parse error, never a default.
    let fixtures = [
        valid(),
        Scenario::layer_starve(1_000_000, 70, 30, 9).to_replay_string(),
    ];
    let cases: &[(&str, &str)] = &[
        // Structure: wrong number of `;`-sections.
        ("sched.layers", "sched.layers "),
        ("sched.layers", "sched.layers 750000:0"),
        ("sched.layers", "sched.layers 750000:0;10000000"),
        ("sched.layers", "sched.layers 750000:0;10000000;0,0,0;extra"),
        // Specs: missing colon, junk numbers, stray separators.
        ("sched.layers", "sched.layers 750000;10000000;0,0,0"),
        ("sched.layers", "sched.layers a:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 750000:b;10000000;0,0,0"),
        ("sched.layers", "sched.layers -1:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 99999999999:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 0.75:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 0x100:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 750000: 0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 750000:0:0;10000000;0,0,0"),
        ("sched.layers", "sched.layers 750000:0,;10000000;0,0,0"),
        (
            "sched.layers",
            "sched.layers 750000:0,,100000:0;10000000;0,0,0",
        ),
        // Replenish window: junk, zero, negative.
        ("sched.layers", "sched.layers 750000:0;ten;0,0,0"),
        ("sched.layers", "sched.layers 750000:0;0;0,0,0"),
        ("sched.layers", "sched.layers 750000:0;-5;0,0,0"),
        // Class map: wrong arity, junk, out-of-range indices.
        ("sched.layers", "sched.layers 750000:0;10000000;0,0"),
        ("sched.layers", "sched.layers 750000:0;10000000;0,0,0,0"),
        ("sched.layers", "sched.layers 750000:0;10000000;0,0,x"),
        ("sched.layers", "sched.layers 1000000:0;10000000;0,0,1"),
        ("sched.layers", "sched.layers 750000:0;10000000;255,0,0"),
        ("sched.layers", "sched.layers 750000:0;10000000;256,0,0"),
        // Table validation: too many layers, overcommitted guarantees.
        (
            "sched.layers",
            "sched.layers 200000:0,200000:0,200000:0,200000:0,200000:0;10000000;0,0,0",
        ),
        (
            "sched.layers",
            "sched.layers 600000:0,600000:0;10000000;0,0,1",
        ),
        // Sabotage arming flag: anything but `none` or a CPU index.
        ("node.sabotage_layer", "node.sabotage_layer maybe"),
        ("node.sabotage_layer", "node.sabotage_layer -1"),
        ("node.sabotage_layer", "node.sabotage_layer 1.5"),
        ("node.sabotage_layer", "node.sabotage_layer "),
        ("node.sabotage_layer", "node.sabotage_layer on"),
        // The layer_mix workload tag: wrong arity, junk numbers.
        ("workload", "workload layer_mix:1:2"),
        ("workload", "workload layer_mix:1:2:3:4"),
        ("workload", "workload layer_mix:a:2:3"),
        ("workload", "workload layer_mix:1:b:3"),
        ("workload", "workload layer_mix:1:2:c"),
    ];
    for fixture in &fixtures {
        for (key, bad) in cases {
            let t = with_line(fixture, key, bad);
            assert!(
                Scenario::from_replay_string(&t).is_err(),
                "`{bad}` must not parse"
            );
        }
    }
    // And the well-formed three-layer fixture itself still parses.
    assert!(Scenario::from_replay_string(&fixtures[1]).is_ok());
}

#[test]
fn structural_defects_are_rejected() {
    let t = valid();
    // Missing `end`.
    assert!(Scenario::from_replay_string(t.strip_suffix("end\n").unwrap()).is_err());
    // Trailing garbage after `end`.
    assert!(Scenario::from_replay_string(&format!("{t}more\n")).is_err());
    // A duplicated line (the next ordered key is then wrong).
    let dup = t.replacen("machine.cpus 3\n", "machine.cpus 3\nmachine.cpus 3\n", 1);
    assert_ne!(dup, t, "fixture must contain the duplicated line");
    assert!(Scenario::from_replay_string(&dup).is_err());
    // Dropping any single line is caught (strict order + required keys).
    let lines: Vec<&str> = t.lines().collect();
    for skip in 0..lines.len() {
        let cut: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(
            Scenario::from_replay_string(&cut).is_err(),
            "deleting line {skip} (`{}`) went unnoticed",
            lines[skip]
        );
    }
}

#[test]
fn rejection_never_panics_on_arbitrary_junk() {
    for junk in [
        "nautix-replay v1",
        "nautix-replay v1\n",
        "nautix-replay v1\nname\n",
        "nautix-replay v1\nname \nend\n",
        "nautix-replay v1\nend\n",
        "\0\0\0",
        "nautix-stream v1\n",
    ] {
        assert!(Scenario::from_replay_string(junk).is_err(), "`{junk:?}`");
    }
    assert!(Workload::decode("").is_err());
    assert!(Workload::decode(":::").is_err());
}

#[test]
fn rejected_inputs_never_run() {
    // A file that fails to parse can't produce a scenario, so there is
    // nothing to run — guard the API shape that enforces it: parse
    // returns Result, and the only constructors are the presets.
    let before = Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 10, 5);
    let text = before.to_replay_string();
    let bad = text.replace("machine.seed 5", "machine.seed five");
    match Scenario::from_replay_string(&bad) {
        Err(e) => assert!(e.contains("machine.seed"), "{e}"),
        Ok(sc) => panic!("malformed seed parsed into {sc:?}"),
    }
}
