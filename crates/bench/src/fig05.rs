//! Figure 5: breakdown of local scheduler overheads on Phi and R415.
//!
//! Four components per timer interrupt — IRQ (entry+exit), Other,
//! Resched (the scheduling pass), Switch (context switch) — measured with
//! the cycle counter from inside the invocation path. The paper's Phi
//! total is ~6000 cycles with the pass about half of it; the R415 is
//! cheaper in both cycles and time.

use crate::common::Scale;
use nautix_hw::{MachineConfig, Platform};
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{Node, NodeConfig, OverheadBreakdown};

/// One platform's breakdown.
#[derive(Debug, Clone)]
pub struct PlatformOverheads {
    /// Which machine.
    pub platform: Platform,
    /// Component summaries in cycles.
    pub breakdown: OverheadBreakdown,
    /// Number of sampled invocations.
    pub samples: u64,
}

impl PlatformOverheads {
    /// Mean total overhead per switching invocation.
    pub fn mean_total(&self) -> f64 {
        self.breakdown.irq.mean
            + self.breakdown.other.mean
            + self.breakdown.resched.mean
            + self.breakdown.switch.mean
    }
}

/// Both platforms' results.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// Xeon Phi.
    pub phi: PlatformOverheads,
    /// Dell R415.
    pub r415: PlatformOverheads,
}

fn measure(platform: Platform, scale: Scale, seed: u64) -> PlatformOverheads {
    let mut cfg = NodeConfig::for_machine(
        MachineConfig::for_platform(platform)
            .with_cpus(2)
            .with_seed(seed),
    );
    cfg.record_overheads = true;
    let mut node = Node::new(cfg);
    let prog = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(100_000, 50_000).build(),
            ))
        } else {
            Action::Compute(1_000_000)
        }
    });
    node.spawn_on(1, "probe", Box::new(prog)).unwrap();
    let horizon = match scale {
        Scale::Quick => 20_000_000,
        Scale::Paper => 200_000_000,
    };
    node.run_for_ns(horizon);
    let stats = &node.scheduler(1).stats;
    PlatformOverheads {
        platform,
        breakdown: stats.overhead_summaries(),
        samples: stats.overheads.len() as u64,
    }
}

/// Run the overhead-breakdown experiment on both testbeds.
pub fn run(scale: Scale, seed: u64) -> Fig05 {
    Fig05 {
        phi: measure(Platform::Phi, scale, seed),
        r415: measure(Platform::R415, scale, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_total_is_about_6000_cycles() {
        let r = run(Scale::Quick, 17);
        assert!(r.phi.samples > 100);
        let total = r.phi.mean_total();
        assert!(
            (5000.0..7000.0).contains(&total),
            "Phi total overhead {total} outside the paper's ~6000-cycle ballpark"
        );
    }

    #[test]
    fn resched_is_about_half_on_phi() {
        let r = run(Scale::Quick, 17);
        let frac = r.phi.breakdown.resched.mean / r.phi.mean_total();
        assert!((0.38..0.62).contains(&frac), "pass fraction {frac}");
    }

    #[test]
    fn r415_is_cheaper_in_cycles() {
        let r = run(Scale::Quick, 17);
        assert!(r.r415.mean_total() < r.phi.mean_total());
        // And in real time too (2.2 GHz vs 1.3 GHz makes it even clearer).
        let phi_ns = r.phi.mean_total() / 1.3;
        let r415_ns = r.r415.mean_total() / 2.2;
        assert!(r415_ns < phi_ns);
    }
}
