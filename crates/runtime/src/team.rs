//! Teams: persistent workers executing a plan under a chosen scheduling
//! regime.
//!
//! A team is the §8 vision in miniature: "adding real-time and barrier
//! removal support to Nautilus-internal implementations of OpenMP and NESL
//! run-times". Workers are spawned one per CPU, optionally admitted as a
//! hard real-time gang (through group admission control with phase
//! correction), and then run the plan region by region with an
//! application-level spin barrier between regions.

use crate::plan::{LoopSchedule, Plan, Region};
use nautix_des::{Cycles, Nanos};
use nautix_hw::CpuId;
use nautix_kernel::{Action, Constraints, GroupId, Program, ResumeCx, SysCall, SysResult};
use nautix_rt::{Node, NodeConfig};
use std::cell::RefCell;
use std::rc::Rc;

/// How the team is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeamMode {
    /// Non-real-time round-robin workers.
    BestEffort,
    /// A gang-scheduled hard real-time group.
    RealTime {
        /// Period τ, ns.
        period: Nanos,
        /// Slice σ, ns.
        slice: Nanos,
    },
}

/// Team configuration.
#[derive(Debug, Clone, Copy)]
pub struct TeamConfig {
    /// Worker count; worker *i* is bound to CPU *i + 1*.
    pub workers: usize,
    /// Scheduling regime.
    pub mode: TeamMode,
}

/// Result of running a plan.
#[derive(Debug, Clone)]
pub struct PlanResult {
    /// Wall time from the first region's start to the last region's end,
    /// slowest worker, ns.
    pub total_ns: Nanos,
    /// Ideal parallel time (perfect balance, zero overhead), ns.
    pub ideal_ns: Nanos,
    /// The serial execution time of the plan's pure compute, ns.
    pub serial_ns: Nanos,
    /// Per-worker total busy cycles.
    pub worker_cycles: Vec<Cycles>,
    /// Sum-reduction results, one per `ReduceSum` region in plan order.
    pub reductions: Vec<u64>,
    /// Whether real-time admission succeeded (true for best-effort).
    pub admitted: bool,
}

impl PlanResult {
    /// Achieved speedup over the serial compute time.
    pub fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.total_ns.max(1) as f64
    }

    /// Parallel efficiency vs. the ideal time.
    pub fn efficiency(&self) -> f64 {
        self.ideal_ns as f64 / self.total_ns.max(1) as f64
    }

    /// Load imbalance: max/mean of per-worker busy cycles.
    pub fn imbalance(&self) -> f64 {
        let max = *self.worker_cycles.iter().max().unwrap_or(&0) as f64;
        let mean =
            self.worker_cycles.iter().sum::<u64>() as f64 / self.worker_cycles.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

struct TeamShared {
    /// Dynamic-loop grab counters, one per region index.
    counters: Vec<u64>,
    /// Reduction accumulators, one per region index (0 where unused).
    accumulators: Vec<u64>,
    /// Spin-barrier state.
    barrier_count: usize,
    barrier_sense: bool,
    /// Per-worker (start, end) wall times.
    spans: Vec<Option<(Nanos, Nanos)>>,
    admit_failed: bool,
}

enum WStep {
    Create,
    Join,
    Settle,
    CheckSettle,
    Admit,
    AwaitAdmit,
    StartClock,
    Region(usize),
    DynLoop(usize),
    BarrierArrive(usize),
    BarrierSpin(usize, bool),
    EndClock,
    Done,
}

struct Worker {
    idx: usize,
    cfg: TeamConfig,
    plan: Rc<Plan>,
    shared: Rc<RefCell<TeamShared>>,
    gid: GroupId,
    step: WStep,
    rmw_cycles: Cycles,
    spin_cycles: Cycles,
    start_ns: Nanos,
}

impl Worker {
    /// Compute this worker's static share `[lo, hi)` of `items`.
    fn static_share(&self, items: u64) -> (u64, u64) {
        let w = self.cfg.workers as u64;
        let i = self.idx as u64;
        let base = items / w;
        let rem = items % w;
        let lo = i * base + i.min(rem);
        let hi = lo + base + u64::from(i < rem);
        (lo, hi)
    }
}

impl Program for Worker {
    fn resume(&mut self, cx: &mut ResumeCx) -> Action {
        loop {
            match self.step {
                WStep::Create => {
                    self.step = WStep::Join;
                    if self.idx == 0 {
                        return Action::Call(SysCall::GroupCreate { name: "team" });
                    }
                }
                WStep::Join => {
                    self.step = WStep::Settle;
                    return Action::Call(SysCall::GroupJoin(self.gid));
                }
                WStep::Settle => {
                    self.step = WStep::CheckSettle;
                    return Action::Call(SysCall::GroupSize(self.gid));
                }
                WStep::CheckSettle => {
                    if cx.result == SysResult::Value(self.cfg.workers as u64) {
                        self.step = WStep::Admit;
                    } else {
                        self.step = WStep::Settle;
                        return Action::Call(SysCall::SleepNs(50_000));
                    }
                }
                WStep::Admit => match self.cfg.mode {
                    TeamMode::BestEffort => self.step = WStep::StartClock,
                    TeamMode::RealTime { period, slice } => {
                        // Batched group admission: the whole team is
                        // admitted (or rejected) in one ledger transaction
                        // at the rendezvous, instead of per-member local
                        // admission plus an error reduction.
                        self.step = WStep::AwaitAdmit;
                        return Action::Call(SysCall::GroupAdmitTeam {
                            group: self.gid,
                            constraints: Constraints::Periodic {
                                phase: period / 2,
                                period,
                                slice,
                            },
                        });
                    }
                },
                WStep::AwaitAdmit => {
                    if cx.result == SysResult::Admission(Ok(())) {
                        self.step = WStep::StartClock;
                    } else {
                        self.shared.borrow_mut().admit_failed = true;
                        self.step = WStep::Done;
                    }
                }
                WStep::StartClock => {
                    self.start_ns = cx.now_ns;
                    self.step = WStep::Region(0);
                }
                WStep::Region(r) => {
                    let Some(region) = self.plan.regions.get(r).copied() else {
                        self.step = WStep::EndClock;
                        continue;
                    };
                    match region {
                        Region::ParallelFor {
                            items,
                            profile,
                            schedule: LoopSchedule::Static,
                        } => {
                            let (lo, hi) = self.static_share(items);
                            let cost = profile.range_cost(lo, hi);
                            self.step = WStep::BarrierArrive(r);
                            if cost > 0 {
                                return Action::Compute(cost);
                            }
                        }
                        Region::ParallelFor {
                            schedule: LoopSchedule::Dynamic { .. },
                            ..
                        } => {
                            self.step = WStep::DynLoop(r);
                        }
                        Region::ReduceSum { items, cost } => {
                            let (lo, hi) = self.static_share(items);
                            // Partial sum of the integers in [lo, hi).
                            let partial = (lo + hi).saturating_sub(1) * (hi - lo) / 2;
                            self.shared.borrow_mut().accumulators_add(r, partial);
                            self.step = WStep::BarrierArrive(r);
                            let c = (hi - lo) * cost + self.rmw_cycles;
                            if c > 0 {
                                return Action::Compute(c);
                            }
                        }
                        Region::Serial { cost } => {
                            self.step = WStep::BarrierArrive(r);
                            if self.idx == 0 && cost > 0 {
                                return Action::Compute(cost);
                            }
                        }
                    }
                }
                WStep::DynLoop(r) => {
                    let Region::ParallelFor {
                        items,
                        profile,
                        schedule: LoopSchedule::Dynamic { chunk },
                    } = self.plan.regions[r]
                    else {
                        unreachable!()
                    };
                    let chunk = chunk.max(1);
                    let lo = {
                        let mut sh = self.shared.borrow_mut();
                        let c = &mut sh.counters[r];
                        let lo = *c;
                        *c = (*c + chunk).min(items);
                        lo
                    };
                    if lo >= items {
                        self.step = WStep::BarrierArrive(r);
                        continue;
                    }
                    let hi = (lo + chunk).min(items);
                    // Pay the grab (contended counter) plus the chunk work.
                    return Action::Compute(self.rmw_cycles + profile.range_cost(lo, hi));
                }
                WStep::BarrierArrive(r) => {
                    let mut sh = self.shared.borrow_mut();
                    let my_sense = sh.barrier_sense;
                    sh.barrier_count += 1;
                    if sh.barrier_count == self.cfg.workers {
                        sh.barrier_count = 0;
                        sh.barrier_sense = !sh.barrier_sense;
                        drop(sh);
                        self.step = WStep::Region(r + 1);
                        return Action::Compute(self.rmw_cycles);
                    }
                    drop(sh);
                    self.step = WStep::BarrierSpin(r, my_sense);
                    return Action::Compute(self.rmw_cycles);
                }
                WStep::BarrierSpin(r, my_sense) => {
                    if self.shared.borrow().barrier_sense != my_sense {
                        self.step = WStep::Region(r + 1);
                    } else {
                        return Action::Compute(self.spin_cycles);
                    }
                }
                WStep::EndClock => {
                    self.shared.borrow_mut().spans[self.idx] = Some((self.start_ns, cx.now_ns));
                    self.step = WStep::Done;
                }
                WStep::Done => return Action::Exit,
            }
        }
    }

    fn name(&self) -> &str {
        "team-worker"
    }
}

impl TeamShared {
    fn accumulators_add(&mut self, region: usize, v: u64) {
        self.accumulators[region] += v;
    }
}

/// Run `plan` on a freshly booted node under `team`.
pub fn run_plan(mut node_cfg: NodeConfig, team: TeamConfig, plan: Plan) -> PlanResult {
    assert!(team.workers >= 1);
    assert!(
        team.workers < node_cfg.machine.n_cpus,
        "need {} CPUs for {} workers plus CPU 0",
        team.workers + 1,
        team.workers
    );
    node_cfg.max_threads = node_cfg
        .max_threads
        .max(node_cfg.machine.n_cpus + team.workers + 1);
    let mut node = Node::new(node_cfg);
    let cm = *node.machine.cost_model();
    let n_regions = plan.regions.len();
    let plan = Rc::new(plan);
    let shared = Rc::new(RefCell::new(TeamShared {
        counters: vec![0; n_regions],
        accumulators: vec![0; n_regions],
        barrier_count: 0,
        barrier_sense: false,
        spans: vec![None; team.workers],
        admit_failed: false,
    }));
    let mut tids = Vec::new();
    for i in 0..team.workers {
        let w = Worker {
            idx: i,
            cfg: team,
            plan: plan.clone(),
            shared: shared.clone(),
            gid: GroupId(0),
            step: if i == 0 { WStep::Create } else { WStep::Join },
            rmw_cycles: cm.atomic_rmw_contended.base,
            spin_cycles: (cm.spin_check.base * 8).max(500),
            start_ns: 0,
        };
        let cpu: CpuId = i + 1;
        tids.push(
            node.spawn_on(cpu, &format!("w{i}"), Box::new(w))
                .expect("spawn worker"),
        );
    }
    node.run_until_quiescent();
    let sh = shared.borrow();
    let total_ns = sh
        .spans
        .iter()
        .map(|s| s.map(|(a, b)| b.saturating_sub(a)).unwrap_or(0))
        .max()
        .unwrap_or(0);
    let freq = node.freq();
    let worker_cycles = tids
        .iter()
        .map(|&t| node.thread_state(t).stats.executed_cycles)
        .collect();
    let reductions = plan
        .regions
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Region::ReduceSum { .. }))
        .map(|(i, _)| sh.accumulators[i])
        .collect();
    PlanResult {
        total_ns,
        ideal_ns: freq.cycles_to_ns(plan.ideal_cost(team.workers as u64)),
        serial_ns: freq.cycles_to_ns(plan.serial_cost()),
        worker_cycles,
        reductions,
        admitted: !sh.admit_failed,
    }
}
