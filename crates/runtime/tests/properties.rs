//! Property tests for the fork-join run-time's arithmetic: loop-cost
//! profiles and plan accounting.

use nautix_runtime::{CostProfile, LoopSchedule, Plan, Region};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = CostProfile> {
    prop_oneof![
        (1u64..10_000).prop_map(CostProfile::Uniform),
        (1u64..5_000, 0u64..100).prop_map(|(base, step)| CostProfile::Linear { base, step }),
        (1u64..2_000, 1u64..50, 1u64..100_000)
            .prop_map(|(base, every, spike)| CostProfile::Spiky { base, every, spike }),
    ]
}

proptest! {
    /// `range_cost` agrees with summing `cost(i)` for every profile shape.
    #[test]
    fn range_cost_matches_pointwise_sum(
        profile in arb_profile(),
        lo in 0u64..500,
        len in 0u64..300,
    ) {
        let hi = lo + len;
        let direct: u64 = (lo..hi).map(|i| profile.cost(i)).sum();
        prop_assert_eq!(profile.range_cost(lo, hi), direct);
    }

    /// Splitting a range at any point conserves total cost.
    #[test]
    fn range_cost_is_additive(
        profile in arb_profile(),
        lo in 0u64..500,
        a in 0u64..200,
        b in 0u64..200,
    ) {
        let mid = lo + a;
        let hi = mid + b;
        prop_assert_eq!(
            profile.range_cost(lo, hi),
            profile.range_cost(lo, mid) + profile.range_cost(mid, hi)
        );
    }

    /// A static partition over any worker count covers every iteration
    /// exactly once with balanced block sizes (the contract the team's
    /// `static_share` relies on; replicated here as the spec).
    #[test]
    fn static_partition_covers_exactly(items in 0u64..10_000, workers in 1u64..64) {
        let share = |i: u64| {
            let base = items / workers;
            let rem = items % workers;
            let lo = i * base + i.min(rem);
            let hi = lo + base + u64::from(i < rem);
            (lo, hi)
        };
        let mut covered = 0u64;
        let mut prev_hi = 0u64;
        for i in 0..workers {
            let (lo, hi) = share(i);
            prop_assert_eq!(lo, prev_hi, "blocks must be contiguous");
            prop_assert!(hi >= lo);
            // Balanced to within one iteration.
            prop_assert!(hi - lo <= items / workers + 1);
            covered += hi - lo;
            prev_hi = hi;
        }
        prop_assert_eq!(covered, items);
        prop_assert_eq!(prev_hi, items);
    }

    /// Plan accounting: ideal cost on one worker equals the serial cost,
    /// and more workers never increase the ideal cost.
    #[test]
    fn ideal_cost_is_monotone_in_workers(
        items in 1u64..2_000,
        unit in 1u64..1_000,
        serial in 0u64..100_000,
    ) {
        let plan = Plan::new()
            .parallel_for(items, CostProfile::Uniform(unit), LoopSchedule::Static)
            .serial(serial)
            .reduce_sum(items, unit);
        prop_assert_eq!(plan.ideal_cost(1), plan.serial_cost());
        let mut last = plan.ideal_cost(1);
        for w in [2u64, 4, 8, 16, 64] {
            let c = plan.ideal_cost(w);
            prop_assert!(c <= last, "ideal cost must not grow with workers");
            // Amdahl floor: never below the serial region.
            prop_assert!(c >= serial);
            last = c;
        }
    }

    /// Region ideal costs at w workers are within ceil of perfect division.
    #[test]
    fn region_ideal_cost_is_ceiling_division(items in 1u64..5_000, unit in 1u64..500, w in 1u64..64) {
        let r = Region::ParallelFor {
            items,
            profile: CostProfile::Uniform(unit),
            schedule: LoopSchedule::Static,
        };
        let total = items * unit;
        prop_assert_eq!(r.ideal_cost(w), total.div_ceil(w));
    }
}
