//! Summary statistics and histograms for evaluation harnesses.
//!
//! Every figure in the paper reports either a distribution (histograms,
//! min/avg/max bands) or a scalar series; these helpers compute them in one
//! pass with exact integer accumulation where possible.

/// Streaming statistics over `u64` samples (Welford's algorithm for the
/// variance, exact integer min/max/sum).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
    sum: u128,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: u64) {
        self.n += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let xf = x as f64;
        let delta = xf - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (xf - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation, 0 for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A frozen statistical summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: u64,
    /// Maximum sample.
    pub max: u64,
}

impl Summary {
    /// Summarize a slice in one pass.
    pub fn of(samples: &[u64]) -> Summary {
        let mut s = OnlineStats::new();
        for &x in samples {
            s.push(x);
        }
        s.summary()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} std={:.1} min={} max={}",
            self.n, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// A fixed-width-bin histogram over `u64` samples.
///
/// Out-of-range samples are counted in saturation bins so no data is
/// silently lost (Figure 3's TSC-offset histogram relies on seeing the full
/// tail).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: u64,
    width: u64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    n: u64,
}

impl Histogram {
    /// Bins of `width` covering `[lo, lo + width*count)`.
    pub fn new(lo: u64, width: u64, count: usize) -> Self {
        assert!(width > 0 && count > 0);
        Histogram {
            lo,
            width,
            bins: vec![0; count],
            underflow: 0,
            overflow: 0,
            n: 0,
        }
    }

    /// Record a sample.
    pub fn record(&mut self, x: u64) {
        self.n += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded (including saturated ones).
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Samples below the first bin.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the last bin's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterate `(bin_lower_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as u64 * self.width, c))
    }

    /// Count in the bin containing `x`, if in range.
    pub fn bin_containing(&self, x: u64) -> Option<u64> {
        if x < self.lo {
            return None;
        }
        self.bins
            .get(((x - self.lo) / self.width) as usize)
            .copied()
    }

    /// Fraction of samples below `x` (approximate to bin granularity;
    /// exact when `x` lies on a bin edge).
    pub fn fraction_below(&self, x: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut c = self.underflow;
        for (edge, count) in self.iter() {
            if edge + self.width <= x {
                c += count;
            }
        }
        c as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        let s = Summary::of(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = OnlineStats::new().summary();
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Summary::of(&[42]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn histogram_bins_and_saturation() {
        let mut h = Histogram::new(100, 10, 3); // [100,110) [110,120) [120,130)
        for x in [99, 100, 109, 110, 125, 130, 999] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins, vec![(100, 2), (110, 1), (120, 1)]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn fraction_below_counts_whole_bins() {
        let mut h = Histogram::new(0, 10, 10);
        for x in 0..100 {
            h.record(x);
        }
        assert!((h.fraction_below(50) - 0.5).abs() < 1e-12);
        assert!((h.fraction_below(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_is_exact() {
        let mut s = OnlineStats::new();
        s.push(u64::MAX);
        s.push(u64::MAX);
        assert_eq!(s.sum(), 2 * u64::MAX as u128);
    }
}
