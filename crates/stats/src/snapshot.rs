//! Versioned statistics snapshots.
//!
//! A [`StatsSnapshot`] is one flat, additive bundle of every counter the
//! evaluation cares about: trial outcomes, scheduler activity, machine
//! traffic, fault-lane injections, degradation responses, admission-engine
//! activity, and oracle tallies. Snapshots compose by component-wise
//! summation ([`StatsSnapshot::merge`]) — a *delta* snapshot covering one
//! trial merged into a running total gives the same total regardless of
//! arrival order, which is what lets harness workers stream deltas over a
//! channel without perturbing determinism.
//!
//! Snapshots serialize through a strict, versioned, serde-free text codec
//! ([`StatsSnapshot::to_text`] / [`StatsSnapshot::from_text`]): a fixed
//! header naming the format version, one `key value` line per counter in a
//! fixed order, and a trailing `end` line. Parsing is exact — wrong
//! version, missing keys, reordered keys, truncation, or trailing garbage
//! are all hard errors, never default-filled. The fixed order makes the
//! encoding canonical: two snapshots are equal iff their texts are
//! byte-identical, which the replay regression corpus relies on.

/// Codec version. Bump when fields are added, removed, or reordered; a
/// parser only ever accepts its own version.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Header line of the snapshot codec.
pub const SNAPSHOT_HEADER: &str = "nautix-stats v3";

macro_rules! snapshot_fields {
    ($( $(#[$doc:meta])* $name:ident ),* $(,)?) => {
        /// One additive bundle of evaluation counters. See the module
        /// docs for the composition and codec contracts.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $( $(#[$doc])* pub $name: u64, )*
        }

        impl StatsSnapshot {
            /// Field names in canonical codec order.
            pub const FIELDS: &'static [&'static str] = &[ $( stringify!($name), )* ];

            /// `(name, value)` pairs in canonical codec order.
            pub fn fields(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($name), self.$name), )* ]
            }

            /// Component-wise sum: fold `delta` into this snapshot.
            pub fn merge(&mut self, delta: &StatsSnapshot) {
                $( self.$name += delta.$name; )*
            }

            fn set(&mut self, name: &str, value: u64) {
                match name {
                    $( stringify!($name) => self.$name = value, )*
                    _ => unreachable!("set() is only called with FIELDS members"),
                }
            }
        }
    };
}

snapshot_fields! {
    /// Trials folded into this snapshot.
    trials,
    /// Simulated machine events processed.
    events,
    /// Real-time job arrivals across all threads.
    arrivals,
    /// Jobs whose slice completed by the deadline.
    met,
    /// Jobs that completed late.
    missed,
    /// Context switches *to* accounted threads.
    dispatches,
    /// Local-scheduler invocations.
    invocations,
    /// Timer-interrupt invocations specifically.
    timer_invocations,
    /// Kick-IPI invocations.
    kick_invocations,
    /// Context switches performed.
    switches,
    /// Threads stolen by idle work stealers.
    steals,
    /// Steals whose thief and victim share an LLC.
    steals_llc,
    /// Steals crossing LLCs inside one package.
    steals_pkg,
    /// Steals crossing packages.
    steals_xpkg,
    /// Size-tagged tasks executed inline by schedulers.
    inline_tasks,
    /// IPIs sent.
    ipis,
    /// IPIs whose sender and target share an LLC.
    ipis_llc,
    /// IPIs crossing LLCs inside one package.
    ipis_pkg,
    /// IPIs crossing packages.
    ipis_xpkg,
    /// Device interrupts delivered.
    device_irqs,
    /// One-shot timer programmings.
    timer_programmings,
    /// SMIs entered.
    smis,
    /// Kick IPIs silently dropped by the fault plan.
    kicks_dropped,
    /// Kick IPIs delivered late by the fault plan.
    kicks_delayed,
    /// One-shot programmings that overshot.
    timer_overshoots,
    /// Frequency dips entered.
    freq_dips,
    /// Spurious device interrupts injected.
    spurious_irqs,
    /// Single-CPU stalls injected.
    cpu_stalls,
    /// Sporadic jobs demoted to aperiodic after a deadline overrun.
    sporadic_demotions,
    /// Periodic reservations widened (revoked and resubmitted).
    periodic_widenings,
    /// Periodic threads demoted to aperiodic.
    periodic_demotions,
    /// Hyperperiod-simulation verdicts served from the memo cache.
    sim_hits,
    /// Hyperperiod simulations actually run.
    sim_misses,
    /// Admission-ledger rollbacks.
    rollbacks,
    /// Oracle suites that observed this span (0 when unarmed).
    oracle_suites,
    /// Trace records the oracles consumed.
    oracle_records,
    /// Invariant checks performed (all families summed).
    oracle_checks,
    /// Admitted misses attributed to modeled environmental interference.
    oracle_env_misses,
    /// Admitted misses where the closed-form test and the overhead-aware
    /// simulation disagree (policy divergences, not scheduler bugs).
    oracle_divergences,
    /// Cluster placement decisions taken (tenant arrivals processed).
    cluster_decisions,
    /// Tenants placed (whole gang admitted on some shard).
    cluster_placed,
    /// Tenants rejected by every candidate shard.
    cluster_rejected,
    /// Per-shard admission attempts made while placing (probes).
    cluster_probes,
    /// Tenants that departed (residency expired, reservation released).
    cluster_departures,
    /// Layer token buckets that went empty, throttling the layer until the
    /// next replenish (always zero on the default single-layer config).
    layer_throttles,
    /// Layer bucket refills at replenish-window boundaries.
    layer_replenishes,
}

impl StatsSnapshot {
    /// Deadline miss rate in [0, 1] over completed jobs.
    pub fn miss_rate(&self) -> f64 {
        let done = self.met + self.missed;
        if done == 0 {
            0.0
        } else {
            self.missed as f64 / done as f64
        }
    }

    /// Total fault-lane injections.
    pub fn faults_total(&self) -> u64 {
        self.kicks_dropped
            + self.kicks_delayed
            + self.timer_overshoots
            + self.freq_dips
            + self.spurious_irqs
            + self.cpu_stalls
    }

    /// Total degradation activations.
    pub fn degrade_total(&self) -> u64 {
        self.sporadic_demotions + self.periodic_widenings + self.periodic_demotions
    }

    /// Fraction of steals that stayed inside the thief's LLC (1.0 when no
    /// steal ever left it, 0.0 when none stayed or none happened).
    pub fn steal_locality(&self) -> f64 {
        if self.steals == 0 {
            0.0
        } else {
            self.steals_llc as f64 / self.steals as f64
        }
    }

    /// One-line deterministic summary: the headline stats the replay
    /// regression corpus pins per scenario. Deliberately excludes the
    /// oracle tallies so a pin holds whether or not a run arms them.
    pub fn headline(&self) -> String {
        format!(
            "events={} jobs={} met={} missed={} miss_rate={:.6} faults={} \
             degrade={} steals={} switches={} ipis={} cluster={}/{}/{}",
            self.events,
            self.met + self.missed,
            self.met,
            self.missed,
            self.miss_rate(),
            self.faults_total(),
            self.degrade_total(),
            self.steals,
            self.switches,
            self.ipis,
            self.cluster_decisions,
            self.cluster_placed,
            self.cluster_rejected,
        )
    }

    /// Canonical text encoding: version header, `key value` lines in
    /// [`StatsSnapshot::FIELDS`] order, `end`.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(64 + Self::FIELDS.len() * 24);
        s.push_str(SNAPSHOT_HEADER);
        s.push('\n');
        for (name, value) in self.fields() {
            s.push_str(name);
            s.push(' ');
            s.push_str(&value.to_string());
            s.push('\n');
        }
        s.push_str("end\n");
        s
    }

    /// Strict parse of [`StatsSnapshot::to_text`] output. Errors on a
    /// wrong version, a missing / reordered / duplicated key, a malformed
    /// value, truncation before `end`, or trailing non-empty lines.
    pub fn from_text(text: &str) -> Result<StatsSnapshot, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty snapshot text")?;
        if header != SNAPSHOT_HEADER {
            return Err(format!(
                "unknown snapshot version: expected `{SNAPSHOT_HEADER}`, got `{header}`"
            ));
        }
        let mut snap = StatsSnapshot::default();
        for field in Self::FIELDS {
            let (i, line) = lines
                .next()
                .ok_or_else(|| format!("truncated snapshot: missing `{field}`"))?;
            let (key, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: expected `{field} <u64>`, got `{line}`", i + 1))?;
            if key != *field {
                return Err(format!(
                    "line {}: expected key `{field}`, got `{key}` (keys are ordered)",
                    i + 1
                ));
            }
            let value: u64 = value
                .parse()
                .map_err(|_| format!("line {}: `{field}` value `{value}` is not a u64", i + 1))?;
            snap.set(field, value);
        }
        match lines.next() {
            Some((_, "end")) => {}
            Some((i, line)) => {
                return Err(format!("line {}: expected `end`, got `{line}`", i + 1));
            }
            None => return Err("truncated snapshot: missing `end`".into()),
        }
        if let Some((i, line)) = lines.find(|(_, l)| !l.trim().is_empty()) {
            return Err(format!(
                "line {}: trailing garbage after `end`: `{line}`",
                i + 1
            ));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(k: u64) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for (i, name) in StatsSnapshot::FIELDS.iter().enumerate() {
            s.set(name, k + i as u64);
        }
        s
    }

    #[test]
    fn text_round_trips_exactly() {
        let s = sample(7);
        let t = s.to_text();
        let back = StatsSnapshot::from_text(&t).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.to_text(), t, "encoding must be canonical");
    }

    #[test]
    fn merge_is_commutative_componentwise_sum() {
        let a = sample(1);
        let b = sample(100);
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.trials, a.trials + b.trials);
        assert_eq!(
            ab.oracle_divergences,
            a.oracle_divergences + b.oracle_divergences
        );
    }

    #[test]
    fn rates_and_totals() {
        let mut s = StatsSnapshot::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.steal_locality(), 0.0);
        s.met = 3;
        s.missed = 1;
        s.steals = 4;
        s.steals_llc = 3;
        s.kicks_dropped = 2;
        s.cpu_stalls = 1;
        s.periodic_widenings = 5;
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.steal_locality() - 0.75).abs() < 1e-12);
        assert_eq!(s.faults_total(), 3);
        assert_eq!(s.degrade_total(), 5);
        assert!(s.headline().contains("miss_rate=0.250000"));
    }

    #[test]
    fn parse_rejects_unknown_version() {
        let t = sample(0)
            .to_text()
            .replace(SNAPSHOT_HEADER, "nautix-stats v9");
        let e = StatsSnapshot::from_text(&t).unwrap_err();
        assert!(e.contains("unknown snapshot version"), "{e}");
    }

    #[test]
    fn parse_rejects_truncation() {
        let t = sample(0).to_text();
        let cut: String = t.lines().take(10).map(|l| format!("{l}\n")).collect();
        let e = StatsSnapshot::from_text(&cut).unwrap_err();
        assert!(e.contains("truncated") || e.contains("expected"), "{e}");
        // Cutting just the `end` line is also truncation.
        let no_end = t.strip_suffix("end\n").unwrap();
        let e = StatsSnapshot::from_text(no_end).unwrap_err();
        assert!(e.contains("missing `end`"), "{e}");
    }

    #[test]
    fn parse_rejects_reordered_and_junk_values() {
        let t = sample(0).to_text();
        let swapped = t.replacen("trials 0", "events 0", 1);
        assert!(StatsSnapshot::from_text(&swapped).is_err());
        let junk = t.replacen("trials 0", "trials many", 1);
        let e = StatsSnapshot::from_text(&junk).unwrap_err();
        assert!(e.contains("not a u64"), "{e}");
        let trailing = format!("{t}surprise\n");
        let e = StatsSnapshot::from_text(&trailing).unwrap_err();
        assert!(e.contains("trailing garbage"), "{e}");
    }
}
