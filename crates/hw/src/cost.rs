//! Calibrated cycle-cost model for kernel-visible hardware paths.
//!
//! The scheduler, kernel, and group code in this reproduction are real Rust
//! executed during simulation; what the paper measures, though, is the
//! *cycle cost* those paths have on real silicon. This module centralizes
//! every such constant, calibrated against the numbers the paper reports:
//!
//! * §5.3 / Figure 5: total local-scheduler software overhead on the Phi is
//!   ~6000 cycles per timer interrupt, "about half" of it the scheduling
//!   pass itself, the rest interrupt processing and the context switch. The
//!   R415's faster cores spend fewer cycles per path.
//! * §5.3 / Figures 6–7: feasibility edges around 10 µs (Phi) and 4 µs
//!   (R415) follow from those overheads (two interrupts per period).
//! * §4.4 / Figure 10: group-coordination costs are dominated by contended
//!   atomic read-modify-write operations and barrier release staggering.
//! * §3.4 / Figure 3: TSC read/write granularity bounds the achievable
//!   cross-CPU time synchronization (~1000 cycles over 256 CPUs).
//!
//! Every cost is a `(base, jitter)` pair: a deterministic path length plus
//! bounded uniform variation standing in for cache and pipeline state.

use crate::topology::Distance;
use nautix_des::{Cycles, DetRng};

/// A modeled cost: fixed base plus uniform jitter in `[0, jitter]` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cost {
    /// Deterministic part of the path length, in cycles.
    pub base: Cycles,
    /// Upper bound of the uniform jitter added to `base`, in cycles.
    pub jitter: Cycles,
}

impl Cost {
    /// A cost with the given base and jitter.
    pub const fn new(base: Cycles, jitter: Cycles) -> Self {
        Cost { base, jitter }
    }

    /// A perfectly deterministic cost.
    pub const fn fixed(base: Cycles) -> Self {
        Cost { base, jitter: 0 }
    }

    /// Draw a concrete duration.
    pub fn draw(&self, rng: &mut DetRng) -> Cycles {
        rng.jitter(self.base, self.jitter)
    }

    /// Worst-case duration, used by admission-control accounting.
    pub fn worst(&self) -> Cycles {
        self.base + self.jitter
    }
}

/// The full set of modeled hardware/firmware path costs for one platform.
///
/// `Copy` on purpose: the model is a flat bag of `Cost` pairs (~320 bytes,
/// no heap), and the event hot path reads it on every interrupt. Callers
/// keep a copy by value instead of cloning through a reference each event.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Interrupt entry: vectoring, IDT dispatch, register save.
    pub irq_entry: Cost,
    /// Interrupt exit: register restore, `iret`.
    pub irq_exit: Cost,
    /// The local scheduler pass itself (queue pump + selection), excluding
    /// interrupt processing and the context switch.
    pub sched_pass: Cost,
    /// Incremental scheduler-pass cost per thread resident on this CPU
    /// (fixed-size heaps keep this small and bounded).
    pub sched_pass_per_thread: Cost,
    /// Bookkeeping around the pass that Figure 5 labels "Other"
    /// (state update, accounting, timer reprogram decision).
    pub sched_other: Cost,
    /// Hardware thread context switch (register state + stack swap).
    pub ctx_switch: Cost,
    /// Programming the APIC one-shot timer / TSC-deadline MSR.
    pub timer_program: Cost,
    /// Kick-IPI end-to-end delivery latency (send to remote vectoring).
    pub ipi_latency: Cost,
    /// Extra latency between a timer expiry and handler start.
    pub irq_raise_latency: Cost,
    /// Granularity (quantization + pipeline) error of one `rdtsc`-based
    /// timestamp exchange step during calibration.
    pub tsc_read_granularity: Cost,
    /// Error floor of a `wrmsr` to the TSC: the write itself takes time, so
    /// the value lands with this much slop (§3.4).
    pub tsc_write_granularity: Cost,
    /// A contended atomic read-modify-write on a shared cache line,
    /// serialized per contender (group join/barrier arrival).
    pub atomic_rmw_contended: Cost,
    /// An uncontended atomic / shared-line access.
    pub atomic_rmw: Cost,
    /// Per-waiter staggering of barrier release: invalidations of the flag
    /// line reach spinners one cache-line transfer apart. This is the δ the
    /// phase-correction algorithm of §4.4 measures and corrects for.
    pub barrier_release_stagger: Cost,
    /// One iteration of a spin-wait check loop.
    pub spin_check: Cost,
    /// A bounded device-interrupt handler (Nautilus drivers are written
    /// with deterministic path length, §2).
    pub device_handler: Cost,
    /// Thread creation/launch path (stack + context from the buddy
    /// allocator; "orders of magnitude faster" than user-level, §2).
    pub thread_spawn: Cost,
    /// Local admission-control processing for one change-constraints call
    /// (runs in the calling thread's context, §3.2).
    pub admission_local: Cost,
    /// One remote write to another CPU's element (BSP communication).
    pub remote_write: Cost,
    /// One local element computation unit in the BSP benchmark.
    pub local_compute_unit: Cost,
    /// Kick-IPI delivery latency when source and destination share a
    /// package but not an LLC (on-die interconnect hop). The same-LLC
    /// case *is* [`ipi_latency`](Self::ipi_latency) — the paper's flat
    /// calibration — so flat topologies draw the identical cost.
    pub ipi_latency_same_package: Cost,
    /// Kick-IPI delivery latency across packages (socket interconnect).
    pub ipi_latency_cross_package: Cost,
    /// One steal-probe read of a victim's queue length when the victim is
    /// in the same package but a different LLC (the same-LLC probe is
    /// [`atomic_rmw`](Self::atomic_rmw) — the line may already be shared).
    pub steal_probe_same_package: Cost,
    /// A steal-probe read across packages.
    pub steal_probe_cross_package: Cost,
    /// Taking a victim's queue lock plus dragging the stolen thread's hot
    /// state across an LLC boundary within one package (same-LLC is
    /// [`atomic_rmw_contended`](Self::atomic_rmw_contended)).
    pub steal_lock_same_package: Cost,
    /// Lock plus migration cost across packages — the working set refills
    /// through the interconnect.
    pub steal_lock_cross_package: Cost,
}

impl CostModel {
    /// Calibration for the Intel Xeon Phi 7210 (KNL) at 1.3 GHz: slow,
    /// in-order-ish cores; ~6000-cycle scheduler overhead per interrupt
    /// (Figure 5a); 10 µs feasibility edge (Figure 6).
    pub fn phi() -> Self {
        CostModel {
            irq_entry: Cost::new(750, 550),
            irq_exit: Cost::new(300, 200),
            sched_pass: Cost::new(2300, 1350),
            sched_pass_per_thread: Cost::new(18, 6),
            sched_other: Cost::new(450, 300),
            ctx_switch: Cost::new(700, 580),
            timer_program: Cost::new(180, 40),
            ipi_latency: Cost::new(1500, 400),
            irq_raise_latency: Cost::new(120, 60),
            tsc_read_granularity: Cost::new(90, 220),
            tsc_write_granularity: Cost::new(150, 400),
            atomic_rmw_contended: Cost::new(4200, 1600),
            atomic_rmw: Cost::new(220, 80),
            barrier_release_stagger: Cost::new(180, 70),
            spin_check: Cost::new(110, 30),
            device_handler: Cost::new(2600, 700),
            thread_spawn: Cost::new(2200, 500),
            admission_local: Cost::new(11000, 2000),
            remote_write: Cost::new(520, 160),
            local_compute_unit: Cost::new(42, 8),
            // KNL's mesh makes tile-to-tile hops cheap but far-quadrant and
            // (hypothetical multi-package) hops expensive: ~1.6x and ~3x the
            // same-LLC IPI respectively.
            ipi_latency_same_package: Cost::new(2400, 600),
            ipi_latency_cross_package: Cost::new(4500, 1100),
            steal_probe_same_package: Cost::new(520, 160),
            steal_probe_cross_package: Cost::new(1100, 300),
            steal_lock_same_package: Cost::new(5400, 1800),
            steal_lock_cross_package: Cost::new(8200, 2400),
        }
    }

    /// Calibration for the Dell R415 (dual AMD Opteron 4122, 2.2 GHz):
    /// faster single-thread cores, lower path costs in cycles *and* time
    /// (§5.3), giving the ~4 µs feasibility edge of Figure 7.
    pub fn r415() -> Self {
        CostModel {
            irq_entry: Cost::new(540, 130),
            irq_exit: Cost::new(200, 50),
            sched_pass: Cost::new(1450, 240),
            sched_pass_per_thread: Cost::new(9, 3),
            sched_other: Cost::new(330, 90),
            ctx_switch: Cost::new(560, 140),
            timer_program: Cost::new(110, 25),
            ipi_latency: Cost::new(900, 250),
            irq_raise_latency: Cost::new(80, 40),
            tsc_read_granularity: Cost::new(60, 140),
            tsc_write_granularity: Cost::new(100, 260),
            atomic_rmw_contended: Cost::new(700, 260),
            atomic_rmw: Cost::new(120, 40),
            barrier_release_stagger: Cost::new(90, 40),
            spin_check: Cost::new(60, 20),
            device_handler: Cost::new(1500, 400),
            thread_spawn: Cost::new(1300, 300),
            admission_local: Cost::new(5200, 900),
            remote_write: Cost::new(280, 90),
            local_compute_unit: Cost::new(20, 4),
            // The R415 is a real dual-socket box: HyperTransport hops cost
            // roughly 1.5x (on-die) and 3x (cross-socket) the local IPI.
            ipi_latency_same_package: Cost::new(1400, 350),
            ipi_latency_cross_package: Cost::new(2600, 700),
            steal_probe_same_package: Cost::new(260, 80),
            steal_probe_cross_package: Cost::new(560, 160),
            steal_lock_same_package: Cost::new(950, 300),
            steal_lock_cross_package: Cost::new(1500, 450),
        }
    }

    /// Worst-case scheduler software overhead of one timer interrupt
    /// (entry + pass + other + switch + timer + exit), used for
    /// feasibility accounting and reported in EXPERIMENTS.md.
    pub fn worst_case_interrupt_overhead(&self, resident_threads: u64) -> Cycles {
        self.irq_entry.worst()
            + self.sched_pass.worst()
            + self.sched_pass_per_thread.worst() * resident_threads
            + self.sched_other.worst()
            + self.ctx_switch.worst()
            + self.timer_program.worst()
            + self.irq_exit.worst()
    }

    /// Kick-IPI delivery latency for a hop of the given distance. The
    /// same-LLC arm returns the flat model's `ipi_latency` field itself,
    /// so a flat topology (where every hop is same-LLC) draws exactly the
    /// costs — and exactly the RNG sequence — it always has.
    pub fn ipi_latency_for(&self, d: Distance) -> Cost {
        match d {
            Distance::SameLlc => self.ipi_latency,
            Distance::SamePackage => self.ipi_latency_same_package,
            Distance::CrossPackage => self.ipi_latency_cross_package,
        }
    }

    /// Steal-probe cost (one remote queue-length read) at a distance.
    pub fn steal_probe_for(&self, d: Distance) -> Cost {
        match d {
            Distance::SameLlc => self.atomic_rmw,
            Distance::SamePackage => self.steal_probe_same_package,
            Distance::CrossPackage => self.steal_probe_cross_package,
        }
    }

    /// Steal lock + migration cost at a distance.
    pub fn steal_lock_for(&self, d: Distance) -> Cost {
        match d {
            Distance::SameLlc => self.atomic_rmw_contended,
            Distance::SamePackage => self.steal_lock_same_package,
            Distance::CrossPackage => self.steal_lock_cross_package,
        }
    }

    /// Mean scheduler software overhead of one timer interrupt.
    pub fn mean_interrupt_overhead(&self, resident_threads: u64) -> Cycles {
        let mean = |c: Cost| c.base + c.jitter / 2;
        mean(self.irq_entry)
            + mean(self.sched_pass)
            + mean(self.sched_pass_per_thread) * resident_threads
            + mean(self.sched_other)
            + mean(self.ctx_switch)
            + mean(self.timer_program)
            + mean(self.irq_exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_overhead_matches_paper_ballpark() {
        // §5.3: "On the Phi, the software overhead is about 6000 cycles."
        let m = CostModel::phi();
        let mean = m.mean_interrupt_overhead(4);
        assert!(
            (5200..=6800).contains(&mean),
            "Phi mean interrupt overhead {mean} out of the paper's ballpark"
        );
    }

    #[test]
    fn phi_sched_pass_is_about_half_of_overhead() {
        // §5.3: "About half of the overhead involves the scheduling pass."
        let m = CostModel::phi();
        let pass = m.sched_pass.base + m.sched_pass.jitter / 2;
        let total = m.mean_interrupt_overhead(0);
        let frac = pass as f64 / total as f64;
        assert!((0.40..=0.60).contains(&frac), "pass fraction {frac}");
    }

    #[test]
    fn r415_is_cheaper_in_cycles_than_phi() {
        let phi = CostModel::phi();
        let r = CostModel::r415();
        assert!(r.mean_interrupt_overhead(4) < phi.mean_interrupt_overhead(4));
    }

    #[test]
    fn r415_feasibility_edge_near_4us() {
        // Two interrupts per period; the edge is where overhead eats the
        // whole period. 4 µs at 2.2 GHz is 8800 cycles.
        let r = CostModel::r415();
        let per_period = 2 * r.mean_interrupt_overhead(2);
        assert!(
            per_period < 8800 && per_period > 4400,
            "per-period overhead {per_period} inconsistent with a 4 µs edge"
        );
    }

    #[test]
    fn distance_costs_are_monotone_in_hops() {
        for m in [CostModel::phi(), CostModel::r415()] {
            for (near, mid, far) in [
                (
                    m.ipi_latency_for(Distance::SameLlc),
                    m.ipi_latency_for(Distance::SamePackage),
                    m.ipi_latency_for(Distance::CrossPackage),
                ),
                (
                    m.steal_probe_for(Distance::SameLlc),
                    m.steal_probe_for(Distance::SamePackage),
                    m.steal_probe_for(Distance::CrossPackage),
                ),
                (
                    m.steal_lock_for(Distance::SameLlc),
                    m.steal_lock_for(Distance::SamePackage),
                    m.steal_lock_for(Distance::CrossPackage),
                ),
            ] {
                assert!(near.worst() < mid.worst() && mid.worst() < far.worst());
            }
        }
    }

    #[test]
    fn same_llc_costs_are_the_flat_fields() {
        // The byte-identity contract: flat topology resolves every hop to
        // SameLlc, which must be the *same* Cost object the flat model used.
        let m = CostModel::phi();
        assert_eq!(m.ipi_latency_for(Distance::SameLlc), m.ipi_latency);
        assert_eq!(m.steal_probe_for(Distance::SameLlc), m.atomic_rmw);
        assert_eq!(m.steal_lock_for(Distance::SameLlc), m.atomic_rmw_contended);
    }

    #[test]
    fn cost_draw_within_bounds() {
        let c = Cost::new(100, 40);
        let mut rng = DetRng::seed_from(5);
        for _ in 0..200 {
            let v = c.draw(&mut rng);
            assert!((100..=140).contains(&v));
        }
        assert_eq!(c.worst(), 140);
        assert_eq!(Cost::fixed(7).draw(&mut rng), 7);
    }
}
