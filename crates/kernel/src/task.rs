//! Lightweight tasks (§3.1).
//!
//! Tasks are queued callbacks with "an even lower cost of creation,
//! launching, and exiting than Nautilus threads" — the analogue of Linux
//! softIRQs or Windows DPCs, with one crucial difference: a task may carry
//! a declared **size** (duration). Size-tagged tasks can be run directly
//! by the scheduler *when there is room before the next real-time arrival*;
//! untagged tasks must go to a helper (task-exec) thread. Either way,
//! periodic and sporadic threads are never delayed by tasks.

use crate::ids::TaskId;
use nautix_des::Cycles;
#[cfg(feature = "trace")]
use nautix_trace::{Record, TraceHandle};
use std::collections::VecDeque;

/// The relevant task queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskQueueFull;

/// A queued task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Handle.
    pub id: TaskId,
    /// Declared size in cycles, if the producer knows it.
    pub size: Option<Cycles>,
    /// Actual execution cost in cycles.
    pub work: Cycles,
}

/// The per-CPU task queues: one for size-tagged tasks, one for unsized.
#[derive(Debug)]
pub struct TaskQueues {
    sized: VecDeque<Task>,
    unsized_q: VecDeque<Task>,
    capacity: usize,
    next_id: u64,
    /// Tasks executed inline by the scheduler.
    pub inline_completed: u64,
    /// Tasks handed to the task-exec thread.
    pub helper_completed: u64,
    #[cfg(feature = "trace")]
    trace: Option<(TraceHandle, u32)>,
}

impl TaskQueues {
    /// Queues bounded at `capacity` tasks each.
    pub fn new(capacity: usize) -> Self {
        TaskQueues {
            sized: VecDeque::with_capacity(capacity),
            unsized_q: VecDeque::with_capacity(capacity),
            capacity,
            next_id: 0,
            inline_completed: 0,
            helper_completed: 0,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// Install (or remove) the trace sink for this CPU's queues; `cpu` is
    /// stamped into every record emitted here.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, trace: Option<(TraceHandle, u32)>) {
        self.trace = trace;
    }

    /// Enqueue a task. Fails when the relevant queue is full.
    pub fn spawn(&mut self, size: Option<Cycles>, work: Cycles) -> Result<TaskId, TaskQueueFull> {
        let q = if size.is_some() {
            &mut self.sized
        } else {
            &mut self.unsized_q
        };
        if q.len() >= self.capacity {
            return Err(TaskQueueFull);
        }
        let id = TaskId(self.next_id);
        self.next_id += 1;
        q.push_back(Task { id, size, work });
        #[cfg(feature = "trace")]
        if let Some((t, cpu)) = &self.trace {
            t.emit(Record::TaskSpawn {
                cpu: *cpu,
                sized: size.is_some(),
                work_cycles: work,
            });
        }
        Ok(id)
    }

    /// Pop the next size-tagged task that fits in `budget` cycles, if the
    /// head fits. (FIFO: the scheduler does not reorder past a task that
    /// doesn't fit — bounded, predictable behavior.)
    pub fn pop_sized_fitting(&mut self, budget: Cycles) -> Option<Task> {
        match self.sized.front() {
            Some(t) if t.size.unwrap_or(Cycles::MAX) <= budget => self.sized.pop_front(),
            _ => None,
        }
    }

    /// Pop the next unsized task (task-exec thread path).
    pub fn pop_unsized(&mut self) -> Option<Task> {
        self.unsized_q.pop_front()
    }

    /// Queued size-tagged tasks.
    pub fn sized_len(&self) -> usize {
        self.sized.len()
    }

    /// Queued unsized tasks.
    pub fn unsized_len(&self) -> usize {
        self.unsized_q.len()
    }

    /// Whether any tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.sized.is_empty() && self.unsized_q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_routes_by_size_tag() {
        let mut q = TaskQueues::new(4);
        q.spawn(Some(100), 100).unwrap();
        q.spawn(None, 500).unwrap();
        assert_eq!(q.sized_len(), 1);
        assert_eq!(q.unsized_len(), 1);
    }

    #[test]
    fn pop_sized_respects_budget() {
        let mut q = TaskQueues::new(4);
        q.spawn(Some(1000), 1000).unwrap();
        assert!(q.pop_sized_fitting(999).is_none());
        let t = q.pop_sized_fitting(1000).unwrap();
        assert_eq!(t.size, Some(1000));
        assert!(q.is_empty());
    }

    #[test]
    fn sized_queue_is_fifo_and_head_blocks() {
        let mut q = TaskQueues::new(4);
        q.spawn(Some(1000), 1000).unwrap();
        q.spawn(Some(10), 10).unwrap();
        // Head needs 1000; a 100-cycle budget must not skip to the small one.
        assert!(q.pop_sized_fitting(100).is_none());
        assert_eq!(q.sized_len(), 2);
    }

    #[test]
    fn unsized_pop_is_fifo() {
        let mut q = TaskQueues::new(4);
        let a = q.spawn(None, 1).unwrap();
        let b = q.spawn(None, 2).unwrap();
        assert_eq!(q.pop_unsized().unwrap().id, a);
        assert_eq!(q.pop_unsized().unwrap().id, b);
        assert!(q.pop_unsized().is_none());
    }

    #[test]
    fn capacity_bounds_each_queue() {
        let mut q = TaskQueues::new(2);
        q.spawn(Some(1), 1).unwrap();
        q.spawn(Some(1), 1).unwrap();
        assert!(q.spawn(Some(1), 1).is_err());
        // The unsized queue has its own bound.
        q.spawn(None, 1).unwrap();
        q.spawn(None, 1).unwrap();
        assert!(q.spawn(None, 1).is_err());
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut q = TaskQueues::new(8);
        let a = q.spawn(Some(1), 1).unwrap();
        let b = q.spawn(None, 1).unwrap();
        let c = q.spawn(Some(1), 1).unwrap();
        assert!(a.0 < b.0 && b.0 < c.0);
    }
}
