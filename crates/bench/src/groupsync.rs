//! Figures 11 and 12: cross-CPU scheduler synchronization in a group.
//!
//! Once a group is admitted, the local schedulers coordinate only through
//! wall-clock time. Each context switch *to* a group member is
//! timestamped on its own CPU; the figure plots, per invocation index, the
//! maximum difference across members. Phase correction is **disabled**
//! here, exactly as in the paper, so the plot shows the barrier
//! release-order bias (growing with group size) plus the uncorrectable
//! variation (largely independent of group size, ~4000 cycles on the Phi).

use crate::common::Scale;
use crate::harness::{run_trials, HarnessStats};
use nautix_des::Summary;
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, GroupId, SysCall};
use nautix_rt::{dispatch_spreads, DispatchLog, HarnessConfig, Node, NodeConfig};

/// Spread series for one group size.
#[derive(Debug, Clone)]
pub struct SyncSeries {
    /// Group size.
    pub n: usize,
    /// Per-invocation-index max cross-CPU difference, cycles.
    pub spreads: Vec<u64>,
    /// Summary over the series.
    pub summary: Summary,
}

/// Run one group-sync measurement.
pub fn measure(n: usize, invocations: usize, phase_correction: bool, seed: u64) -> SyncSeries {
    measure_instrumented(n, invocations, phase_correction, seed).0
}

/// [`measure`] plus the trial's simulated-event count.
pub fn measure_instrumented(
    n: usize,
    invocations: usize,
    phase_correction: bool,
    seed: u64,
) -> (SyncSeries, u64) {
    let machine = MachineConfig::phi().with_cpus(n + 1).with_seed(seed);
    let (series, events, _) = measure_on(machine, n, invocations, phase_correction);
    (series, events)
}

/// [`measure`] on an explicit machine: the group occupies CPUs `1..=n` of
/// whatever `machine` describes (which must have at least `n + 1` CPUs —
/// topology, queue backend, and seed all come from the config). Returns
/// the spread series, the trial's simulated-event count, and the
/// machine's per-distance IPI counters (same-LLC, same-package,
/// cross-package) — the gang-dispatch kick traffic the topology
/// benchmarks report.
pub fn measure_on(
    machine: MachineConfig,
    n: usize,
    invocations: usize,
    phase_correction: bool,
) -> (SyncSeries, u64, [u64; 3]) {
    let mut cfg = NodeConfig::phi();
    // Idle threads occupy one table entry per CPU; machine-sized groups
    // on 1024-CPU machines need more than the default 1024 entries.
    cfg.max_threads = cfg.max_threads.max(machine.n_cpus + n + 64);
    cfg.machine = machine;
    cfg.dispatch_log_cap = invocations + 64;
    cfg.record_ga_timing = true;
    cfg.phase_correction = phase_correction;
    let mut node = Node::new(cfg);
    let gid = GroupId(0);
    let period: u64 = 100_000; // 100 µs
    let slice: u64 = 50_000;
    let mut tids = Vec::new();
    for i in 0..n {
        let prog = FnProgram::new(move |_cx, step| {
            let k = if i == 0 { step } else { step + 1 };
            match k {
                0 => Action::Call(SysCall::GroupCreate { name: "sync" }),
                1 => Action::Call(SysCall::GroupJoin(gid)),
                2 => Action::Call(SysCall::SleepNs(3_000_000)),
                3 => Action::Call(SysCall::GroupChangeConstraints {
                    group: gid,
                    constraints: Constraints::Periodic {
                        phase: 1_000_000,
                        period,
                        slice,
                    },
                }),
                // Compute forever: every period produces one dispatch.
                _ => Action::Compute(1_000_000),
            }
        });
        tids.push(
            node.spawn_on(i + 1, &format!("s{i}"), Box::new(prog))
                .unwrap(),
        );
    }
    // Horizon: settle + admission + the requested invocations.
    let horizon_ns = 10_000_000 + (invocations as u64 + 8) * period;
    node.run_for_ns(horizon_ns);
    let t_admitted = node
        .ga_timings()
        .iter()
        .map(|t| t.t_done)
        .max()
        .expect("admission must complete");
    // Align logs at the first gang-scheduled dispatch.
    let freq = node.freq();
    let mut logs = Vec::new();
    for &t in &tids {
        let full = node.thread_state(t).dispatch_log.times();
        let mut l = DispatchLog::with_capacity(invocations + 64);
        for &x in full.iter().filter(|&&x| x > t_admitted + period) {
            l.record(x);
        }
        logs.push(l);
    }
    let refs: Vec<&DispatchLog> = logs.iter().collect();
    let spreads_ns = dispatch_spreads(&refs);
    let spreads: Vec<u64> = spreads_ns
        .iter()
        .take(invocations)
        .map(|&ns| freq.ns_to_cycles(ns))
        .collect();
    (
        SyncSeries {
            n,
            summary: Summary::of(&spreads),
            spreads,
        },
        node.machine.events_processed(),
        node.machine.ipis_by_distance(),
    )
}

/// Figure 11: an 8-thread group followed over many invocations.
pub fn fig11(scale: Scale, seed: u64) -> SyncSeries {
    let inv = match scale {
        Scale::Quick => 1000,
        Scale::Paper => 10_000,
    };
    measure(8, inv, false, seed)
}

/// Figure 12: spread series at several group sizes, one independent trial
/// per size, fanned across worker threads.
pub fn fig12_with_stats(
    hc: &HarnessConfig,
    scale: Scale,
    seed: u64,
) -> (Vec<SyncSeries>, HarnessStats) {
    let (sizes, inv): (Vec<usize>, usize) = match scale {
        Scale::Quick => (vec![8, 32, 63], 300),
        Scale::Paper => (vec![8, 64, 128, 255], 1000),
    };
    let set = run_trials(hc, sizes, |&n| measure_instrumented(n, inv, false, seed));
    (set.results, set.stats)
}

/// [`fig12_with_stats`] without the instrumentation, configured from the
/// environment.
pub fn fig12(scale: Scale, seed: u64) -> Vec<SyncSeries> {
    fig12_with_stats(&HarnessConfig::from_env(), scale, seed).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_thread_group_stays_within_a_few_thousand_cycles() {
        let s = measure(8, 300, false, 21);
        assert!(s.spreads.len() >= 200, "got {} spreads", s.spreads.len());
        // Figure 11: "context switch events on the local schedulers happen
        // within a few 1000s of cycles"; the band sits below ~8000.
        assert!(
            s.summary.max < 10_000,
            "spread max {} cycles too wide",
            s.summary.max
        );
        assert!(s.summary.mean > 0.0);
    }

    #[test]
    fn variation_is_independent_of_group_size_but_bias_grows() {
        let small = measure(8, 200, false, 21);
        let big = measure(48, 200, false, 21);
        // Mean (bias) grows with n without phase correction...
        assert!(
            big.summary.mean > small.summary.mean,
            "bias should grow with group size ({} vs {})",
            big.summary.mean,
            small.summary.mean
        );
        // ...but the variation does not grow proportionally (paper:
        // "largely independent of the number of threads").
        let ratio = big.summary.std_dev / small.summary.std_dev.max(1.0);
        assert!(
            ratio < 6.0,
            "variation grew too much with group size (x{ratio})"
        );
    }

    #[test]
    fn phase_correction_removes_the_bias() {
        let raw = measure(16, 200, false, 21);
        let corrected = measure(16, 200, true, 21);
        assert!(
            corrected.summary.mean < raw.summary.mean,
            "phase correction must shrink the spread ({} vs {})",
            corrected.summary.mean,
            raw.summary.mean
        );
    }
}
