//! Quickstart: boot a simulated Phi node, admit a hard real-time thread,
//! and watch it hit every deadline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nautix::kernel::{FnProgram, SysResult};
use nautix::prelude::*;

fn main() {
    // A 4-CPU slice of the paper's Xeon Phi testbed.
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(4).with_seed(7);
    let mut node = Node::new(cfg);

    println!(
        "booted {} CPUs at {} MHz; TSCs calibrated to within {} cycles",
        node.machine.n_cpus(),
        node.freq().mhz(),
        node.time_sync().residual_summary().max
    );

    // A periodic hard real-time thread: 1 ms period, 250 µs slice.
    // Threads start aperiodic and request constraints at run time (§3.1).
    let program = FnProgram::new(|cx, n| {
        if n == 0 {
            return Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(1_000_000, 250_000).build(),
            ));
        }
        if n == 1 {
            assert_eq!(
                cx.result,
                SysResult::Admission(Ok(())),
                "admission control accepted the constraints"
            );
            println!("admitted at t = {} ns", cx.now_ns);
        }
        // Burn CPU forever; the scheduler enforces the slice per period.
        Action::Compute(100_000)
    });
    let tid = node.spawn_on(1, "rt-worker", Box::new(program)).unwrap();

    // Run 100 ms of virtual time.
    node.run_for_ns(100_000_000);

    let st = node.thread_state(tid);
    println!(
        "after 100 ms: {} arrivals, {} met, {} missed ({}% CPU granted)",
        st.stats.arrivals,
        st.stats.met,
        st.stats.missed,
        st.constraints.utilization_ppm() / 10_000,
    );
    assert_eq!(st.stats.missed, 0, "feasible constraints never miss");
    println!(
        "scheduler ran {} passes on CPU 1 with {} context switches",
        node.scheduler(1).stats.invocations,
        node.scheduler(1).stats.switches
    );
}
