//! Blocking collectives: election, reduction, broadcast (§4.2).
//!
//! Group admission control "builds on other basic group features, namely
//! distributed election, barrier, reduction, and broadcast, all scoped to
//! the group." The paper deliberately uses *simple* (linear-cost) schemes;
//! Figure 10's linear growth with group size follows from that and is
//! reproduced here: each arrival pays a contended atomic on the shared
//! collective state (charged by the node), and departures are staggered a
//! cache-line transfer apart, like the barrier's.
//!
//! A [`Collective`] collects one `(thread, value)` pair per member and
//! completes when the last member arrives. The *decision rule* is supplied
//! at completion time: min-value for election (lowest thread id wins, the
//! deterministic analogue of a CAS race), max for the error reduction of
//! Algorithm 1, leader's-value for broadcast.

use nautix_des::{Cycles, DetRng};
use nautix_hw::Cost;
use nautix_kernel::ThreadId;

/// How a completed collective combines its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Smallest submitted value wins (leader election submits thread ids).
    Min,
    /// Largest submitted value wins (error-code reduction).
    Max,
    /// The value submitted by the given thread wins (broadcast source).
    Of(ThreadId),
}

/// One thread's release from a completed collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveRelease {
    /// The thread to release.
    pub tid: ThreadId,
    /// Release order (0 departs first — the completing arriver).
    pub order: usize,
    /// Departure delay after the completion instant.
    pub delay: Cycles,
    /// The collective's result, delivered to every member.
    pub result: u64,
}

/// Result of an arrival at a collective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveOutcome {
    /// The caller blocks until completion.
    Wait,
    /// The caller completed the collective; all members depart.
    Complete(Vec<CollectiveRelease>),
}

/// A reusable blocking collective over `parties` threads.
#[derive(Debug)]
pub struct Collective {
    parties: usize,
    arrived: Vec<(ThreadId, u64)>,
    episodes: u64,
}

impl Collective {
    /// A collective over `parties` threads.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        Collective {
            parties,
            arrived: Vec::with_capacity(parties),
            episodes: 0,
        }
    }

    /// Participant count.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Resize; only legal with no arrivals outstanding.
    pub fn set_parties(&mut self, parties: usize) {
        assert!(parties >= 1);
        assert!(
            self.arrived.is_empty(),
            "cannot resize a collective with waiters"
        );
        self.parties = parties;
    }

    /// Outstanding arrivals.
    pub fn waiting(&self) -> usize {
        self.arrived.len()
    }

    /// Completed episodes.
    pub fn episodes(&self) -> u64 {
        self.episodes
    }

    /// Thread `tid` arrives with `value`. The final arriver resolves the
    /// collective with `decision` and receives the release schedule.
    pub fn arrive(
        &mut self,
        tid: ThreadId,
        value: u64,
        decision: Decision,
        rng: &mut DetRng,
        stagger: Cost,
    ) -> CollectiveOutcome {
        debug_assert!(
            !self.arrived.iter().any(|&(t, _)| t == tid),
            "thread {tid} arrived twice"
        );
        self.arrived.push((tid, value));
        if self.arrived.len() < self.parties {
            return CollectiveOutcome::Wait;
        }
        self.episodes += 1;
        let result = match decision {
            Decision::Min => self.arrived.iter().map(|&(_, v)| v).min().unwrap(),
            Decision::Max => self.arrived.iter().map(|&(_, v)| v).max().unwrap(),
            Decision::Of(src) => self
                .arrived
                .iter()
                .find(|&&(t, _)| t == src)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("broadcast source {src} is not a participant")),
        };
        // The completing arriver departs first; earlier arrivals follow in
        // arrival order, one cache-line transfer apart.
        let mut releases = Vec::with_capacity(self.parties);
        releases.push(CollectiveRelease {
            tid,
            order: 0,
            delay: 0,
            result,
        });
        let mut delay = 0;
        let n = self.arrived.len();
        for (i, &(t, _)) in self.arrived[..n - 1].iter().enumerate() {
            delay += stagger.draw(rng);
            releases.push(CollectiveRelease {
                tid: t,
                order: i + 1,
                delay,
                result,
            });
        }
        self.arrived.clear();
        CollectiveOutcome::Complete(releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(
        c: &mut Collective,
        inputs: &[(ThreadId, u64)],
        d: Decision,
    ) -> Vec<CollectiveRelease> {
        let mut rng = DetRng::seed_from(3);
        for &(t, v) in &inputs[..inputs.len() - 1] {
            assert_eq!(
                c.arrive(t, v, d, &mut rng, Cost::fixed(5)),
                CollectiveOutcome::Wait
            );
        }
        let &(t, v) = inputs.last().unwrap();
        match c.arrive(t, v, d, &mut rng, Cost::fixed(5)) {
            CollectiveOutcome::Complete(rs) => rs,
            _ => panic!("expected completion"),
        }
    }

    #[test]
    fn election_picks_min() {
        let mut c = Collective::new(3);
        let rs = complete(&mut c, &[(7, 7), (2, 2), (5, 5)], Decision::Min);
        assert!(rs.iter().all(|r| r.result == 2));
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn reduction_picks_max() {
        let mut c = Collective::new(4);
        let rs = complete(&mut c, &[(0, 0), (1, 9), (2, 3), (3, 1)], Decision::Max);
        assert!(rs.iter().all(|r| r.result == 9));
    }

    #[test]
    fn broadcast_delivers_source_value() {
        let mut c = Collective::new(3);
        let rs = complete(&mut c, &[(0, 100), (1, 200), (2, 300)], Decision::Of(1));
        assert!(rs.iter().all(|r| r.result == 200));
    }

    #[test]
    #[should_panic]
    fn broadcast_from_non_participant_panics() {
        let mut c = Collective::new(2);
        complete(&mut c, &[(0, 1), (1, 2)], Decision::Of(9));
    }

    #[test]
    fn releases_are_staggered_in_arrival_order() {
        let mut c = Collective::new(3);
        let rs = complete(&mut c, &[(10, 0), (11, 0), (12, 0)], Decision::Min);
        assert_eq!(rs[0].tid, 12); // completer departs first
        assert_eq!(rs[0].delay, 0);
        assert_eq!(rs[1].tid, 10);
        assert_eq!(rs[1].delay, 5);
        assert_eq!(rs[2].tid, 11);
        assert_eq!(rs[2].delay, 10);
    }

    #[test]
    fn collective_is_reusable() {
        let mut c = Collective::new(2);
        complete(&mut c, &[(0, 1), (1, 2)], Decision::Max);
        let rs = complete(&mut c, &[(0, 5), (1, 3)], Decision::Max);
        assert_eq!(rs[0].result, 5);
        assert_eq!(c.episodes(), 2);
    }

    #[test]
    fn single_party_completes_immediately() {
        let mut c = Collective::new(1);
        let mut rng = DetRng::seed_from(1);
        match c.arrive(4, 42, Decision::Min, &mut rng, Cost::fixed(1)) {
            CollectiveOutcome::Complete(rs) => {
                assert_eq!(rs.len(), 1);
                assert_eq!(rs[0].result, 42);
            }
            _ => panic!(),
        }
    }
}
