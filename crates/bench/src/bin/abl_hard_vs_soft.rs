//! Ablation: hard vs. soft real-time under overload (§7's contrast with
//! the authors' earlier soft-RT systems).

use nautix_bench::{ablations, banner, f, out_dir, write_csv};

fn main() {
    banner("Ablation: hard admission vs soft overload (2 x 60% on one CPU)");
    let (admitted_rate, admitted_count, soft_rates) = ablations::hard_vs_soft_overload(47);
    println!("config,outcome");
    println!(
        "hard,{admitted_count} of 2 admitted; admitted thread miss rate {}",
        f(admitted_rate)
    );
    println!(
        "soft,both admitted; miss rates {}",
        soft_rates
            .iter()
            .map(|&r| f(r))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!(
        "\nhard real-time converts overload into an up-front admission failure; \
         soft real-time converts it into misses for everyone."
    );
    write_csv(
        &out_dir().join("abl_hard_vs_soft.csv"),
        &["config", "admitted", "miss_rates"],
        vec![
            vec![
                "hard".to_string(),
                admitted_count.to_string(),
                f(admitted_rate),
            ],
            vec![
                "soft".to_string(),
                "2".to_string(),
                soft_rates
                    .iter()
                    .map(|&r| f(r))
                    .collect::<Vec<_>>()
                    .join(";"),
            ],
        ],
    );
    println!("wrote {:?}", out_dir().join("abl_hard_vs_soft.csv"));
}
