//! Microbenchmarks of the scheduler's actual host-code hot paths: the
//! fixed-capacity queues, the scheduling pass, admission control, the
//! buddy allocator, and the group collectives. These measure the *real*
//! data structures (not modeled cycle costs) — the bounded-time property
//! §3.3 relies on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nautix_des::{DetRng, Freq};
use nautix_kernel::{BuddyAllocator, Constraints, FixedHeap, SimBarrier};
use nautix_rt::{CpuLoad, InvokeReason, LocalScheduler, SchedConfig, SchedThread};
use std::hint::black_box;

fn bench_fixed_heap(c: &mut Criterion) {
    c.bench_function("fixed_heap_push_pop_64", |b| {
        b.iter_batched(
            || FixedHeap::<u64, usize>::new(64),
            |mut h| {
                for i in 0..64usize {
                    h.push(((i * 2654435761) % 1000) as u64, i).unwrap();
                }
                while let Some(x) = h.pop() {
                    black_box(x);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_scheduler_invoke(c: &mut Criterion) {
    c.bench_function("local_scheduler_invoke_8_threads", |b| {
        let cfg = SchedConfig::default();
        let mut sched = LocalScheduler::new(0, 0, cfg, Freq::phi(), 64);
        let mut threads: Vec<SchedThread> = (0..16).map(|_| SchedThread::new_aperiodic()).collect();
        #[allow(clippy::needless_range_loop)]
        for tid in 1..9 {
            let cons = Constraints::periodic(100_000 * tid as u64, 5_000 * tid as u64).build();
            sched
                .change_constraints(tid, &mut threads[tid], cons, 0, true)
                .unwrap();
            sched.enqueue(tid, &mut threads[tid], 0);
        }
        let mut now = 0u64;
        b.iter(|| {
            now += 10_000;
            black_box(sched.invoke(now, &mut threads, InvokeReason::Timer, true))
        })
    });
}

fn bench_admission(c: &mut Criterion) {
    c.bench_function("admission_edf_bound", |b| {
        let cfg = SchedConfig::default();
        b.iter_batched(
            CpuLoad::new,
            |mut load| {
                for i in 1..8u64 {
                    let _ = black_box(
                        load.admit(&cfg, &Constraints::periodic(100_000 * i, 9_000 * i).build()),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("admission_hyperperiod_sim", |b| {
        let cfg = SchedConfig {
            policy: nautix_rt::AdmissionPolicy::HyperperiodSim {
                overhead_ns: 9_000,
                window_cap_ns: 10_000_000,
            },
            ..SchedConfig::default()
        };
        b.iter_batched(
            CpuLoad::new,
            |mut load| {
                let _ =
                    black_box(load.admit(&cfg, &Constraints::periodic(100_000, 50_000).build()));
                let _ =
                    black_box(load.admit(&cfg, &Constraints::periodic(250_000, 50_000).build()));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_16k", |b| {
        b.iter_batched(
            || BuddyAllocator::new(0, 12, 24),
            |mut buddy| {
                let mut addrs = Vec::with_capacity(64);
                for _ in 0..64 {
                    addrs.push(buddy.alloc(16 * 1024).unwrap());
                }
                for a in addrs {
                    buddy.free(a);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_barrier(c: &mut Criterion) {
    c.bench_function("sim_barrier_episode_64", |b| {
        let mut rng = DetRng::seed_from(1);
        let stagger = nautix_hw::Cost::new(180, 70);
        b.iter_batched(
            || SimBarrier::new(64),
            |mut bar| {
                for t in 0..64 {
                    black_box(bar.arrive(t, &mut rng, stagger));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fixed_heap, bench_scheduler_invoke, bench_admission,
              bench_buddy, bench_barrier
}
criterion_main!(benches);
