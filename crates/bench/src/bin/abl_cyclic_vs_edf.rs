//! Ablation: online eager-EDF scheduling vs a statically compiled cyclic
//! executive for the same periodic task set (§8 future work, implemented).
//!
//! Both meet every deadline; the interesting difference is run-time
//! mechanics. The executive's interrupt count is *fixed by construction*
//! (exactly one per minor frame, scheduling decided offline), while EDF's
//! count is data-dependent: arrivals and slice ends coalesce or do not
//! depending on the constraint mix.

use nautix_bench::{banner, f, out_dir, write_csv};
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, FnProgram, Program, SysCall, SysResult};
use nautix_rt::{compile_cyclic, Constraints, CyclicExecutive, CyclicTask, Node, NodeConfig};

const SET: [CyclicTask; 3] = [
    CyclicTask {
        period: 100_000,
        wcet: 15_000,
    },
    CyclicTask {
        period: 200_000,
        wcet: 40_000,
    },
    CyclicTask {
        period: 400_000,
        wcet: 30_000,
    },
];

fn node() -> Node {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(77);
    cfg.sched = nautix_rt::SchedConfig::throughput();
    Node::new(cfg)
}

/// Run the set as three independent EDF threads on one CPU.
fn run_edf(horizon_ns: u64) -> (u64, u64, u64, u64) {
    let mut node = node();
    let mut tids = Vec::new();
    for t in SET {
        let prog = FnProgram::new(move |_cx, n| {
            if n == 0 {
                Action::Call(SysCall::ChangeConstraints(
                    Constraints::periodic(t.period, t.wcet).build(),
                ))
            } else {
                Action::Compute(1_000_000)
            }
        });
        tids.push(node.spawn_on(1, "edf", Box::new(prog)).unwrap());
    }
    node.run_for_ns(horizon_ns);
    let met = tids.iter().map(|&t| node.thread_state(t).stats.met).sum();
    let missed = tids
        .iter()
        .map(|&t| node.thread_state(t).stats.missed)
        .sum();
    let st = &node.scheduler(1).stats;
    (met, missed, st.timer_invocations, st.switches)
}

/// Run the same set as a compiled cyclic executive.
fn run_cyclic(horizon_ns: u64) -> (u64, u64, u64, u64) {
    let schedule = compile_cyclic(&SET).unwrap();
    schedule.verify().unwrap();
    let mut node = node();
    let hosting = schedule.hosting_constraints(10_000);
    let major_cycles = (horizon_ns / schedule.hyperperiod) as usize;
    let placements_per_major: u64 = schedule
        .frames
        .iter()
        .map(|f| f.placements.len() as u64)
        .sum();
    let mut exec = Some(CyclicExecutive::new(schedule, node.freq(), major_cycles));
    let mut inner: Option<CyclicExecutive> = None;
    let prog = FnProgram::new(move |cx, n| {
        if n == 0 {
            return Action::Call(SysCall::ChangeConstraints(hosting));
        }
        if n == 1 {
            assert_eq!(cx.result, SysResult::Admission(Ok(())));
            inner = exec.take();
        }
        inner.as_mut().unwrap().resume(cx)
    });
    let tid = node.spawn_on(1, "cyclic", Box::new(prog)).unwrap();
    node.run_until_quiescent();
    let st = node.thread_state(tid);
    let sched = &node.scheduler(1).stats;
    let _ = placements_per_major;
    (
        st.stats.met,
        st.stats.missed,
        sched.timer_invocations,
        sched.switches,
    )
}

fn main() {
    banner("Ablation: cyclic executive vs online EDF (same task set, 1 CPU)");
    let horizon = 100_000_000; // 100 ms
    let (edf_met, edf_missed, edf_timers, edf_switches) = run_edf(horizon);
    let (cyc_frames, cyc_missed, cyc_timers, cyc_switches) = run_cyclic(horizon);
    println!("scheme,jobs_met,missed,timer_interrupts,context_switches");
    println!("edf,{edf_met},{edf_missed},{edf_timers},{edf_switches}");
    println!("cyclic,{cyc_frames},{cyc_missed},{cyc_timers},{cyc_switches}");
    println!(
        "\nboth miss nothing; the executive's interrupt rate is fixed by \
         construction (1/frame = {} per 100 ms), EDF's is workload-dependent ({})",
        f(cyc_timers as f64),
        f(edf_timers as f64)
    );
    write_csv(
        &out_dir().join("abl_cyclic_vs_edf.csv"),
        &["scheme", "missed", "timer_interrupts", "context_switches"],
        vec![
            vec![
                "edf".to_string(),
                edf_missed.to_string(),
                edf_timers.to_string(),
                edf_switches.to_string(),
            ],
            vec![
                "cyclic".to_string(),
                cyc_missed.to_string(),
                cyc_timers.to_string(),
                cyc_switches.to_string(),
            ],
        ],
    );
    println!("wrote {:?}", out_dir().join("abl_cyclic_vs_edf.csv"));
}
