//! Figures 13 and 14: resource control with commensurate performance.
//!
//! The BSP benchmark is admitted as a gang with (τ, σ) constraints across
//! a sweep of period/slice combinations; the paper plots execution time
//! against utilization (σ/τ) and finds the execution rate "roughly matches
//! the time resources given", with more variation at the finest
//! granularity where the task execution time approaches the constraints
//! themselves.

use crate::common::Scale;
use crate::harness::{run_trials, HarnessStats};
use nautix_bsp::{run_bsp, BspMode, BspParams};
use nautix_des::Nanos;
use nautix_hw::MachineConfig;
use nautix_rt::{HarnessConfig, NodeConfig, SchedConfig};

/// One (τ, σ) sample.
#[derive(Debug, Clone, Copy)]
pub struct ThrottlePoint {
    /// Period τ, ns.
    pub period_ns: Nanos,
    /// Slice σ, ns.
    pub slice_ns: Nanos,
    /// Utilization σ/τ.
    pub utilization: f64,
    /// Benchmark execution time (slowest thread), ns.
    pub time_ns: Nanos,
    /// Whether admission succeeded.
    pub admitted: bool,
}

/// Granularity of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Figure 13: coarse — compute dominates.
    Coarse,
    /// Figure 14: fine — per-iteration work is comparable to constraints.
    Fine,
}

fn params(g: Granularity, p: usize, scale: Scale) -> BspParams {
    let iters = match (g, scale) {
        (Granularity::Coarse, Scale::Quick) => 6,
        (Granularity::Coarse, Scale::Paper) => 12,
        (Granularity::Fine, Scale::Quick) => 40,
        (Granularity::Fine, Scale::Paper) => 120,
    };
    match g {
        Granularity::Coarse => BspParams::coarse(p, iters),
        Granularity::Fine => BspParams::fine(p, iters),
    }
}

fn node_cfg(p: usize, seed: u64) -> NodeConfig {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(p + 1).with_seed(seed);
    cfg.sched = SchedConfig::throughput();
    cfg
}

/// The (period, slice%) grid.
pub fn grid(scale: Scale) -> (Vec<Nanos>, Vec<u64>) {
    match scale {
        Scale::Quick => (vec![200_000, 500_000, 1_000_000], vec![20, 50, 80]),
        Scale::Paper => (
            // 900 combinations like the paper: 30 periods x 30 slices.
            (1..=30).map(|i| 100_000 * i as u64).collect(),
            (1..=30).map(|i| 3 * i as u64).collect(),
        ),
    }
}

/// Number of worker CPUs.
pub fn worker_count(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 8,
        Scale::Paper => 63,
    }
}

/// Measure one point.
pub fn measure(
    g: Granularity,
    p: usize,
    period_ns: Nanos,
    slice_ns: Nanos,
    scale: Scale,
    seed: u64,
) -> ThrottlePoint {
    measure_instrumented(g, p, period_ns, slice_ns, scale, seed).0
}

/// [`measure`] plus the trial's simulated-event count.
pub fn measure_instrumented(
    g: Granularity,
    p: usize,
    period_ns: Nanos,
    slice_ns: Nanos,
    scale: Scale,
    seed: u64,
) -> (ThrottlePoint, u64) {
    let bsp = params(g, p, scale).with_mode(BspMode::RtGroup {
        period: period_ns,
        slice: slice_ns,
    });
    let r = run_bsp(node_cfg(p, seed), bsp);
    (
        ThrottlePoint {
            period_ns,
            slice_ns,
            utilization: slice_ns as f64 / period_ns as f64,
            time_ns: r.max_ns,
            admitted: r.admitted,
        },
        r.events,
    )
}

/// Run the full sweep for one granularity, grid points fanned across
/// worker threads as independent trials.
pub fn run_with_stats(
    hc: &HarnessConfig,
    g: Granularity,
    scale: Scale,
    seed: u64,
) -> (Vec<ThrottlePoint>, HarnessStats) {
    let (periods, slice_pcts) = grid(scale);
    let p = worker_count(scale);
    let mut points = Vec::new();
    for &period in &periods {
        for &pct in &slice_pcts {
            let slice = (period * pct / 100).max(1000);
            if slice * 100 >= period * 99 {
                continue; // beyond the 99% utilization limit
            }
            points.push((period, slice));
        }
    }
    let set = run_trials(hc, points, |&(period, slice)| {
        measure_instrumented(g, p, period, slice, scale, seed)
    });
    (set.results, set.stats)
}

/// Run the full sweep for one granularity, configured from the environment.
pub fn run(g: Granularity, scale: Scale, seed: u64) -> Vec<ThrottlePoint> {
    run_with_stats(&HarnessConfig::from_env(), g, scale, seed).0
}

/// Linear-control figure of merit: for each admitted point, the product
/// `time x utilization` should be roughly constant (perfect throttling);
/// returns (mean, coefficient of variation) of that product.
pub fn control_quality(points: &[ThrottlePoint]) -> (f64, f64) {
    let products: Vec<f64> = points
        .iter()
        .filter(|p| p.admitted && p.time_ns > 0)
        .map(|p| p.time_ns as f64 * p.utilization)
        .collect();
    if products.is_empty() {
        return (0.0, f64::INFINITY);
    }
    let mean = products.iter().sum::<f64>() / products.len() as f64;
    let var = products.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / products.len() as f64;
    (mean, var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_throttling_is_commensurate() {
        // Same period, three utilizations: time scales inversely.
        let p = 4;
        let a = measure(Granularity::Coarse, p, 1_000_000, 800_000, Scale::Quick, 3);
        let b = measure(Granularity::Coarse, p, 1_000_000, 400_000, Scale::Quick, 3);
        let c = measure(Granularity::Coarse, p, 1_000_000, 200_000, Scale::Quick, 3);
        assert!(a.admitted && b.admitted && c.admitted);
        let r_ab = b.time_ns as f64 / a.time_ns as f64;
        let r_ac = c.time_ns as f64 / a.time_ns as f64;
        assert!((1.5..3.0).contains(&r_ab), "2x throttle ratio {r_ab}");
        assert!((2.8..6.0).contains(&r_ac), "4x throttle ratio {r_ac}");
    }

    #[test]
    fn throttling_holds_across_periods_at_equal_utilization() {
        // Figure 13: "regardless of the specific period chosen, benchmark
        // execution rate roughly matches the time resources given."
        let p = 4;
        let a = measure(Granularity::Coarse, p, 250_000, 125_000, Scale::Quick, 3);
        let b = measure(Granularity::Coarse, p, 1_000_000, 500_000, Scale::Quick, 3);
        let ratio = a.time_ns as f64 / b.time_ns as f64;
        assert!(
            (0.6..1.6).contains(&ratio),
            "same utilization, different periods: ratio {ratio}"
        );
    }

    #[test]
    fn fine_granularity_has_more_variation_than_coarse() {
        let run_g = |g| {
            let p = 4;
            let mut pts = Vec::new();
            for period in [200_000u64, 500_000, 1_000_000] {
                for pct in [25u64, 50, 75] {
                    pts.push(measure(g, p, period, period * pct / 100, Scale::Quick, 3));
                }
            }
            control_quality(&pts).1
        };
        let cv_coarse = run_g(Granularity::Coarse);
        let cv_fine = run_g(Granularity::Fine);
        assert!(
            cv_fine > cv_coarse,
            "fine granularity should vary more (fine {cv_fine} vs coarse {cv_coarse})"
        );
        assert!(
            cv_coarse < 0.35,
            "coarse control should be clean ({cv_coarse})"
        );
    }
}
