//! Satellite 2: the replay regression corpus.
//!
//! Ten hand-picked scenarios live as `.replay` files under
//! `tests/replays/`; each has its simulated event count and headline
//! stats pinned here. Any change to the scheduler, machine model, fault
//! injection, or the codec that shifts one of these histories fails this
//! test — regenerate the corpus with
//! `cargo run -p nautix-bench --bin make_corpus` only for *intentional*
//! behavior changes, and say so in the commit.
//!
//! The pins must hold at any worker thread count and with or without
//! armed oracles (`NAUTIX_ORACLES=1` under `--features trace`):
//! [`nautix_stats::StatsSnapshot::headline`] deliberately excludes the
//! oracle tallies, and each trial is a single-node simulation whose
//! history never depends on host threading. CI runs this suite at
//! `NAUTIX_THREADS=1` and `4` with oracles armed.

use nautix_bench::harness::run_trials_pooled;
use nautix_bench::{Scenario, TrialOutcome};
use nautix_rt::HarnessConfig;
use std::path::PathBuf;

/// `name -> (events, headline)` pins, from `make_corpus` output.
const PINS: &[(&str, u64, &str)] = &[
    (
        "flat_heap_feasible",
        835,
        "events=835 jobs=79 met=79 missed=0 miss_rate=0.000000 faults=0 degrade=0 steals=0 switches=161 ipis=0 cluster=0/0/0",
    ),
    (
        "t2x4_wheel_tight",
        358,
        "events=358 jobs=79 met=79 missed=0 miss_rate=0.000000 faults=0 degrade=0 steals=0 switches=161 ipis=0 cluster=0/0/0",
    ),
    (
        "phi_edge_infeasible",
        249,
        "events=249 jobs=59 met=0 missed=59 miss_rate=1.000000 faults=0 degrade=0 steals=0 switches=121 ipis=0 cluster=0/0/0",
    ),
    // The kick lanes are per-IPI-send draws and this workload sends no
    // kicks, so faults stays 0 — the pin still fixes the codec fields
    // and the exact RNG/event stream of a kick-lane-armed machine.
    (
        "lane_kick",
        1037,
        "events=1037 jobs=169 met=169 missed=0 miss_rate=0.000000 faults=0 degrade=0 steals=0 switches=342 ipis=0 cluster=0/0/0",
    ),
    (
        "lane_timer_overshoot",
        1038,
        "events=1038 jobs=169 met=169 missed=0 miss_rate=0.000000 faults=16 degrade=0 steals=0 switches=342 ipis=0 cluster=0/0/0",
    ),
    (
        "lane_freq_dip",
        1044,
        "events=1044 jobs=169 met=169 missed=0 miss_rate=0.000000 faults=7 degrade=0 steals=0 switches=342 ipis=0 cluster=0/0/0",
    ),
    (
        "lane_spurious_stall",
        1081,
        "events=1081 jobs=168 met=167 missed=1 miss_rate=0.005952 faults=23 degrade=0 steals=0 switches=340 ipis=0 cluster=0/0/0",
    ),
    (
        "widening_churn",
        659,
        "events=659 jobs=132 met=128 missed=4 miss_rate=0.030303 faults=20 degrade=1 steals=0 switches=268 ipis=0 cluster=0/0/0",
    ),
    // The cluster engine measures admission, not dispatch: its event
    // count is legitimately zero and the `cluster=` triple carries the
    // whole placement/departure history.
    (
        "cluster_po2_churn",
        0,
        "events=0 jobs=0 met=0 missed=0 miss_rate=0.000000 faults=0 degrade=0 steals=0 switches=0 ipis=0 cluster=200/164/36",
    ),
    // Layered bandwidth control (codec v3): the background hog's layer
    // throttles every replenish window while the RT probe stays clean.
    (
        "layer_starve_bg",
        1778,
        "events=1778 jobs=119 met=119 missed=0 miss_rate=0.000000 faults=0 degrade=0 steals=0 switches=264 ipis=0 cluster=0/0/0",
    ),
];

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/replays")
}

fn load(name: &str) -> Scenario {
    let path = corpus_dir().join(format!("{name}.replay"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus file {path:?} missing: {e} (run make_corpus)"));
    let sc = Scenario::from_replay_string(&text)
        .unwrap_or_else(|e| panic!("corpus file {path:?} does not parse: {e}"));
    assert_eq!(sc.name, name, "corpus file name must match its scenario");
    sc
}

#[test]
fn corpus_is_complete_and_has_no_strays() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut pinned: Vec<String> = PINS.iter().map(|(n, _, _)| format!("{n}.replay")).collect();
    pinned.sort();
    assert_eq!(
        on_disk, pinned,
        "tests/replays/ and the PINS table must list the same scenarios"
    );
}

#[test]
fn every_corpus_scenario_reproduces_its_pins() {
    // Fan the corpus across the harness exactly like a sweep; results
    // must match the pins regardless of NAUTIX_THREADS.
    let scenarios: Vec<Scenario> = PINS.iter().map(|(name, _, _)| load(name)).collect();
    let outs: Vec<TrialOutcome> =
        run_trials_pooled(&HarnessConfig::from_env(), scenarios, |pool, sc| {
            let out = sc.run_recorded(pool).unwrap();
            let events = out.events;
            (out, events)
        })
        .results;
    for ((name, events, headline), out) in PINS.iter().zip(&outs) {
        assert_eq!(
            out.events, *events,
            "`{name}`: event count drifted from its pin"
        );
        assert_eq!(
            out.snapshot.headline(),
            *headline,
            "`{name}`: headline stats drifted from their pin"
        );
    }
}

#[test]
fn corpus_trials_are_pool_reset_invariant() {
    // Replay the whole corpus twice on ONE pooled node (worst-case reset
    // churn: every trial reconfigures the machine) and once fresh each;
    // all three answers must be identical.
    let mut pool = nautix_bench::harness::NodePool::new();
    let first: Vec<TrialOutcome> = PINS
        .iter()
        .map(|(n, _, _)| load(n).run_pooled(&mut pool).unwrap())
        .collect();
    let second: Vec<TrialOutcome> = PINS
        .iter()
        .map(|(n, _, _)| load(n).run_pooled(&mut pool).unwrap())
        .collect();
    let fresh: Vec<TrialOutcome> = PINS
        .iter()
        .map(|(n, _, _)| load(n).run_fresh().unwrap())
        .collect();
    assert_eq!(first, second, "pooled replays must not leak state");
    assert_eq!(first, fresh, "pooled replay must equal fresh construction");
}

#[test]
fn corpus_files_are_canonical() {
    // Each on-disk file must be the byte-exact canonical encoding of the
    // scenario it parses to — no hand-edited drift.
    for (name, _, _) in PINS {
        let path = corpus_dir().join(format!("{name}.replay"));
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = Scenario::from_replay_string(&text).unwrap();
        assert_eq!(
            sc.to_replay_string(),
            text,
            "`{name}`: corpus file is not canonical; regenerate with make_corpus"
        );
    }
}
