//! Timing-constraint descriptors: the scheduling ABI of §3.1.
//!
//! The scheduler adopts the classic model of Liu for its *interface* (not
//! its implementation). Threads present one of three constraint classes at
//! admission time; the scheduler either guarantees them until changed, or
//! rejects the request. These descriptor types live in the kernel crate —
//! they are the equivalent of Nautilus's public scheduler header — while
//! their semantics are implemented by `nautix-rt`.

use nautix_des::Nanos;

/// Priority of an aperiodic (non-real-time) thread. Lower is more
/// important, like a nice value.
pub type Priority = u64;

/// A thread's requested timing constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraints {
    /// No real-time constraints; scheduled round-robin (or by priority)
    /// in the background. Newly created threads begin life in this class.
    Aperiodic {
        /// Scheduling priority µ among aperiodic threads.
        priority: Priority,
    },
    /// `(φ, τ, σ)`: first eligible at admission time + `phase`, then every
    /// `period`; guaranteed `slice` of execution before each next arrival
    /// (which is the deadline of the current one).
    Periodic {
        /// Phase φ: offset of the first arrival from the admission time.
        phase: Nanos,
        /// Period τ between arrivals; also the relative deadline.
        period: Nanos,
        /// Slice σ of guaranteed execution per period.
        slice: Nanos,
    },
    /// `(φ, ω, δ, µ)`: arrives once at admission time + `phase`, must
    /// receive `size` of execution by `deadline` (an absolute offset from
    /// admission), then continues as an aperiodic thread with priority
    /// `aperiodic_priority`.
    Sporadic {
        /// Phase φ: offset of the arrival from the admission time.
        phase: Nanos,
        /// Total execution ω guaranteed before the deadline.
        size: Nanos,
        /// Deadline δ, measured from the admission time.
        deadline: Nanos,
        /// Priority the thread drops to after its sporadic burst.
        aperiodic_priority: Priority,
    },
}

impl Constraints {
    /// The default constraints every thread starts with, and the fallback
    /// the group-admission algorithm re-admits with on failure (§4.3 —
    /// "admission control for aperiodic threads cannot fail").
    pub fn default_aperiodic() -> Self {
        Constraints::Aperiodic { priority: 1 }
    }

    /// Builder for a periodic constraint with zero phase. Call
    /// [`ConstraintsBuilder::build`] (validates, panics on a structurally
    /// impossible descriptor) or [`ConstraintsBuilder::try_build`] to get
    /// the [`Constraints`] value.
    pub fn periodic(period: Nanos, slice: Nanos) -> ConstraintsBuilder {
        ConstraintsBuilder(Constraints::Periodic {
            phase: 0,
            period,
            slice,
        })
    }

    /// Builder for a sporadic constraint with zero phase and a post-burst
    /// aperiodic priority of 1. See [`Constraints::periodic`].
    pub fn sporadic(size: Nanos, deadline: Nanos) -> ConstraintsBuilder {
        ConstraintsBuilder(Constraints::Sporadic {
            phase: 0,
            size,
            deadline,
            aperiodic_priority: 1,
        })
    }

    /// True for periodic or sporadic constraints.
    pub fn is_realtime(&self) -> bool {
        !matches!(self, Constraints::Aperiodic { .. })
    }

    /// Requested utilization in parts-per-million: σ/τ for periodic
    /// threads, ω/δ for sporadic ones, 0 for aperiodic.
    pub fn utilization_ppm(&self) -> u64 {
        match *self {
            Constraints::Aperiodic { .. } => 0,
            Constraints::Periodic { period, slice, .. } => {
                if period == 0 {
                    u64::MAX
                } else {
                    ((slice as u128 * 1_000_000) / period as u128) as u64
                }
            }
            Constraints::Sporadic { size, deadline, .. } => {
                if deadline == 0 {
                    u64::MAX
                } else {
                    ((size as u128 * 1_000_000) / deadline as u128) as u64
                }
            }
        }
    }

    /// Replace the phase φ (used by the phase-correction step of group
    /// admission, §4.4). No effect on aperiodic constraints. Returns a
    /// builder: a new phase can invalidate a sporadic descriptor
    /// (φ + ω > δ), so the result must be re-validated via
    /// [`ConstraintsBuilder::build`] / [`ConstraintsBuilder::try_build`].
    pub fn with_phase(self, new_phase: Nanos) -> ConstraintsBuilder {
        let c = match self {
            Constraints::Aperiodic { .. } => self,
            Constraints::Periodic { period, slice, .. } => Constraints::Periodic {
                phase: new_phase,
                period,
                slice,
            },
            Constraints::Sporadic {
                size,
                deadline,
                aperiodic_priority,
                ..
            } => Constraints::Sporadic {
                phase: new_phase,
                size,
                deadline,
                aperiodic_priority,
            },
        };
        ConstraintsBuilder(c)
    }

    /// The phase φ, if the class has one.
    pub fn phase(&self) -> Option<Nanos> {
        match *self {
            Constraints::Aperiodic { .. } => None,
            Constraints::Periodic { phase, .. } | Constraints::Sporadic { phase, .. } => {
                Some(phase)
            }
        }
    }

    /// Structural validity: nonzero periods/slices, slice ≤ period,
    /// size ≤ deadline. (Feasibility against overheads is admission
    /// control's job, not the descriptor's.)
    pub fn validate(&self) -> Result<(), ConstraintError> {
        match *self {
            Constraints::Aperiodic { .. } => Ok(()),
            Constraints::Periodic { period, slice, .. } => {
                if period == 0 || slice == 0 {
                    Err(ConstraintError::ZeroDuration)
                } else if slice > period {
                    Err(ConstraintError::SliceExceedsPeriod)
                } else {
                    Ok(())
                }
            }
            Constraints::Sporadic {
                size,
                deadline,
                phase,
                ..
            } => {
                if size == 0 || deadline == 0 {
                    Err(ConstraintError::ZeroDuration)
                } else if phase.saturating_add(size) > deadline {
                    Err(ConstraintError::SizeExceedsDeadline)
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// A constraint descriptor under construction, returned by
/// [`Constraints::periodic`], [`Constraints::sporadic`], and
/// [`Constraints::with_phase`].
///
/// The builder closes the window in which a structurally impossible
/// descriptor (σ > τ, φ + ω > δ, zero durations) could circulate unchecked
/// until admission: [`ConstraintsBuilder::build`] runs
/// [`Constraints::validate`] eagerly, so every descriptor produced through
/// the convenience constructors is valid by construction.
///
/// ```
/// use nautix_kernel::Constraints;
/// let c = Constraints::periodic(100_000, 25_000).phase(500).build();
/// assert_eq!(c.utilization_ppm(), 250_000);
/// assert!(Constraints::periodic(100, 101).try_build().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "call .build() (or .try_build()) to get the Constraints value"]
pub struct ConstraintsBuilder(Constraints);

impl ConstraintsBuilder {
    /// Set the phase φ. No effect on aperiodic constraints.
    pub fn phase(self, phase: Nanos) -> Self {
        // `with_phase` on the raw descriptor already preserves the class.
        self.0.with_phase(phase)
    }

    /// Set the priority µ a sporadic thread drops to after its burst (or
    /// an aperiodic thread's priority). No effect on periodic constraints.
    pub fn priority(mut self, priority: Priority) -> Self {
        match &mut self.0 {
            Constraints::Aperiodic { priority: p } => *p = priority,
            Constraints::Sporadic {
                aperiodic_priority, ..
            } => *aperiodic_priority = priority,
            Constraints::Periodic { .. } => {}
        }
        self
    }

    /// Validate and return the descriptor.
    ///
    /// # Panics
    /// If the descriptor is structurally impossible; use
    /// [`ConstraintsBuilder::try_build`] where rejection is an expected
    /// outcome.
    #[track_caller]
    pub fn build(self) -> Constraints {
        match self.try_build() {
            Ok(c) => c,
            Err(e) => panic!("invalid constraints {:?}: {:?}", self.0, e),
        }
    }

    /// Validate and return the descriptor, or the structural error.
    pub fn try_build(self) -> Result<Constraints, ConstraintError> {
        self.0.validate().map(|()| self.0)
    }

    /// Return the descriptor without validating. For code that must not
    /// panic and defers to admission control's own `validate()` (for
    /// example phase correction on an already-admitted descriptor), and
    /// for tests that need a malformed descriptor on purpose.
    #[doc(hidden)]
    pub fn build_unchecked(self) -> Constraints {
        self.0
    }
}

/// Canonical signature of a periodic task set under a given overhead
/// model, for memoizing hyperperiod-simulation verdicts.
///
/// `set` must already be in canonical order (sorted `(period, slice)`
/// pairs): the synchronous critical-instant EDF simulation is invariant
/// under permutation of the set, and phases do not enter it at all (every
/// job is released at time zero), so the canonical key deliberately covers
/// only periods, slices, and the overhead model. FNV-1a over the
/// little-endian words keeps the hash dependency-free and stable across
/// platforms. Signature equality is a *filter*, not proof of set equality:
/// a memo must still compare the canonical sets before reusing a verdict.
pub fn task_set_signature(set: &[(Nanos, Nanos)], overhead_ns: Nanos, window_cap_ns: Nanos) -> u64 {
    debug_assert!(
        set.windows(2).all(|w| w[0] <= w[1]),
        "signature input must be sorted canonically"
    );
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |word: u64| {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(set.len() as u64);
    for &(period, slice) in set {
        mix(period);
        mix(slice);
    }
    mix(overhead_ns);
    mix(window_cap_ns);
    h
}

/// Structural errors in a constraint descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintError {
    /// A zero period, slice, size, or deadline.
    ZeroDuration,
    /// σ > τ can never be satisfied.
    SliceExceedsPeriod,
    /// φ + ω > δ can never be satisfied.
    SizeExceedsDeadline,
}

/// Why an admission request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The descriptor itself is malformed.
    Invalid(ConstraintError),
    /// The utilization test failed: admitting would exceed the CPU's
    /// limit minus reservations.
    UtilizationExceeded,
    /// Period/slice finer than the configured granularity bounds (§3.3:
    /// "bounds are placed on the granularity and minimum size of the
    /// timing constraints").
    TooFine,
    /// The sporadic reservation cannot cover this burst.
    SporadicReservationExceeded,
    /// The per-CPU thread table or queue capacity is full.
    CapacityExceeded,
    /// Group admission: some member CPU rejected its thread.
    GroupMemberRejected,
    /// Admitting would exceed the guaranteed utilization of the layer the
    /// request's class maps to (layered bandwidth control).
    LayerOvercommit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_slice_over_period() {
        let c = Constraints::periodic(100_000, 25_000).build();
        assert_eq!(c.utilization_ppm(), 250_000); // 25%
    }

    #[test]
    fn sporadic_utilization_is_size_over_deadline() {
        let c = Constraints::sporadic(10_000, 40_000).build();
        assert_eq!(c.utilization_ppm(), 250_000);
    }

    #[test]
    fn aperiodic_has_zero_utilization_and_no_phase() {
        let c = Constraints::default_aperiodic();
        assert_eq!(c.utilization_ppm(), 0);
        assert_eq!(c.phase(), None);
        assert!(!c.is_realtime());
    }

    #[test]
    fn with_phase_only_touches_phase() {
        let c = Constraints::periodic(100, 50).phase(7).build();
        assert_eq!(
            c,
            Constraints::Periodic {
                phase: 7,
                period: 100,
                slice: 50
            }
        );
        let a = Constraints::default_aperiodic().with_phase(9).build();
        assert_eq!(a.phase(), None);
    }

    #[test]
    fn validation_catches_degenerate_descriptors() {
        assert_eq!(
            Constraints::periodic(0, 0).try_build(),
            Err(ConstraintError::ZeroDuration)
        );
        assert_eq!(
            Constraints::periodic(100, 101).try_build(),
            Err(ConstraintError::SliceExceedsPeriod)
        );
        assert_eq!(
            Constraints::sporadic(50, 40).try_build(),
            Err(ConstraintError::SizeExceedsDeadline)
        );
        assert!(Constraints::periodic(100, 100).try_build().is_ok());
        assert!(Constraints::default_aperiodic().validate().is_ok());
    }

    #[test]
    fn sporadic_phase_counts_against_deadline() {
        let c = Constraints::Sporadic {
            phase: 30,
            size: 20,
            deadline: 45,
            aperiodic_priority: 0,
        };
        assert_eq!(c.validate(), Err(ConstraintError::SizeExceedsDeadline));
    }

    #[test]
    fn signature_distinguishes_sets_and_overhead_models() {
        let a = task_set_signature(&[(100_000, 25_000)], 0, 1_000_000_000);
        let b = task_set_signature(&[(100_000, 26_000)], 0, 1_000_000_000);
        let c = task_set_signature(&[(100_000, 25_000)], 5_000, 1_000_000_000);
        let d = task_set_signature(&[(100_000, 25_000)], 0, 500_000_000);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Length is mixed in, so a set and its prefix differ.
        let e = task_set_signature(&[(100_000, 25_000), (200_000, 25_000)], 0, 1_000_000_000);
        assert_ne!(a, e);
        // Deterministic.
        assert_eq!(
            a,
            task_set_signature(&[(100_000, 25_000)], 0, 1_000_000_000)
        );
    }

    #[test]
    fn zero_period_utilization_saturates() {
        let c = Constraints::Periodic {
            phase: 0,
            period: 0,
            slice: 1,
        };
        assert_eq!(c.utilization_ppm(), u64::MAX);
    }
}
