//! Satellite 1: the replay codec round-trips every representable
//! scenario, and a replayed quick trial reproduces the original's event
//! count and stats snapshot byte for byte — pooled and fresh, serial and
//! fanned across 4 worker threads.

use nautix_bench::harness::{run_trials_pooled, NodePool};
use nautix_bench::{Scenario, TrialOutcome, Workload};
use nautix_hw::{Cost, FaultPlan, MachineConfig, Platform, SmiConfig, TimerMode, Topology};
use nautix_rt::{AdmissionPolicy, DegradePolicy, HarnessConfig, SchedMode, StealPolicy};
use proptest::prelude::*;
use proptest::TestRng;

/// A randomized but structurally valid scenario, derived entirely from
/// `seed`. Covers both workloads, both platforms, both queue backends,
/// flat and hierarchical topologies, every admission policy, SMI and
/// fault plans on and off, and perturbed node knobs — the whole codec
/// surface, not just the two sweep presets.
fn arb_scenario(seed: u64) -> Scenario {
    let mut rng = TestRng::seed_from(seed);
    let mut sc = match rng.below(3) {
        0 => {
            let platform = if rng.below(2) == 0 {
                Platform::Phi
            } else {
                Platform::R415
            };
            let period_ns = 10_000 + rng.below(1_000_000);
            let slice_ns = (period_ns * (10 + rng.below(80)) / 100).max(50);
            Scenario::missrate(platform, period_ns, slice_ns, 10 + rng.below(200), seed)
        }
        1 => {
            let intensity = rng.below(5) as f64 / 4.0;
            Scenario::fault_mix(
                intensity,
                30_000 + rng.below(500_000),
                20 + rng.below(60),
                10 + rng.below(200),
                seed,
            )
        }
        _ => Scenario::cluster(
            1 + rng.below(16) as usize,
            1 + rng.below(16) as usize,
            rng.below(100_000),
            nautix_cluster::PlacementStrategy::ALL[rng.below(4) as usize],
            seed,
        ),
    };
    sc.name = format!("arb_{seed:016x}");
    let m = &mut sc.machine;
    if rng.below(2) == 0 {
        m.queue = if rng.below(2) == 0 {
            nautix_des::QueueKind::Heap
        } else {
            nautix_des::QueueKind::Wheel
        };
    }
    if rng.below(2) == 0 {
        m.topology =
            Topology::parse(&format!("{}x{}", 1 + rng.below(4), 1 + rng.below(4))).unwrap();
    }
    if rng.below(3) == 0 {
        m.timer_mode = match rng.below(2) {
            0 => TimerMode::OneShot {
                tick_cycles: 1 + rng.below(64),
            },
            _ => TimerMode::TscDeadline,
        };
    }
    if rng.below(3) == 0 {
        m.smi = SmiConfig::noisy(m.platform.freq(), 1 + rng.below(10_000), 1 + rng.below(100));
    }
    if rng.below(3) == 0 {
        m.faults = FaultPlan::noisy(m.platform.freq(), (1 + rng.below(8)) as f64 / 4.0);
    }
    m.tsc_writable = rng.below(2) == 0;
    m.boot_skew_max = rng.below(1 << 20);
    let s = &mut sc.sched;
    s.policy = match rng.below(3) {
        0 => AdmissionPolicy::EdfBound,
        1 => AdmissionPolicy::RmBound,
        _ => AdmissionPolicy::HyperperiodSim {
            overhead_ns: rng.below(10_000),
            window_cap_ns: 1 + rng.below(1 << 30),
        },
    };
    s.mode = if rng.below(2) == 0 {
        SchedMode::Eager
    } else {
        SchedMode::Lazy
    };
    s.steal = if rng.below(2) == 0 {
        StealPolicy::LlcFirst
    } else {
        StealPolicy::Uniform
    };
    s.work_stealing = rng.below(2) == 0;
    s.lazy_margin_ns = rng.below(100_000);
    s.util_limit_ppm = 500_000 + rng.below(500_000);
    s.degrade = DegradePolicy {
        enabled: rng.below(2) == 0,
        miss_threshold: 1 + rng.below(8) as u32,
        widen_pct: rng.below(100) as u32,
        max_widen: rng.below(5) as u32,
    };
    sc.laden = (0..1 + rng.below(3)).map(|c| c as usize).collect();
    sc.calib_rounds = 1 + rng.below(64) as u32;
    sc.max_threads = 8 + rng.below(120) as usize;
    sc.steal_poll_ns = 1_000 + rng.below(10_000_000);
    sc.phase_correction = rng.below(2) == 0;
    sc.oracles = rng.below(4) == 0;
    sc.sabotage_fifo = if rng.below(8) == 0 { Some(1) } else { None };
    sc
}

proptest! {
    #[test]
    fn any_scenario_round_trips_canonically(seed in 0u64..u64::MAX) {
        let sc = arb_scenario(seed);
        let text = sc.to_replay_string();
        let back = Scenario::from_replay_string(&text).unwrap();
        prop_assert_eq!(&back, &sc);
        // Canonical: re-encoding the parse is byte-identical.
        prop_assert_eq!(back.to_replay_string(), text);
    }

    #[test]
    fn any_single_line_corruption_is_detected_or_equivalent(seed in 0u64..u64::MAX) {
        // Deleting any one line of a replay must never parse into the
        // same scenario silently; the strict ordered codec rejects it.
        let sc = arb_scenario(seed);
        let text = sc.to_replay_string();
        let lines: Vec<&str> = text.lines().collect();
        let mut rng = TestRng::seed_from(seed ^ 0x9E3779B97F4A7C15);
        let victim = rng.below(lines.len() as u64) as usize;
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != victim)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        prop_assert!(Scenario::from_replay_string(&mutated).is_err());
    }
}

/// The quick trials the replay-reproduction tests rerun; small enough
/// that each runs in milliseconds.
fn quick_trials() -> Vec<Scenario> {
    vec![
        Scenario::missrate(Platform::Phi, 1_000_000, 500_000, 40, 5),
        Scenario::fault_mix(0.5, 100_000, 60, 60, 11),
        Scenario::cluster(2, 4, 80, nautix_cluster::PlacementStrategy::BestFit, 13),
    ]
}

#[test]
fn replayed_trial_reproduces_snapshot_byte_for_byte_fresh_and_pooled() {
    for sc in quick_trials() {
        let original = sc.run_fresh().unwrap();
        let replayed = Scenario::from_replay_string(&sc.to_replay_string()).unwrap();

        // Fresh node.
        let fresh = replayed.run_fresh().unwrap();
        assert_eq!(fresh, original, "fresh replay diverged for `{}`", sc.name);
        assert_eq!(
            fresh.snapshot.to_text(),
            original.snapshot.to_text(),
            "snapshot text must be byte-identical"
        );

        // Pooled node, pre-dirtied by a different trial so reset is real.
        let mut pool = NodePool::new();
        let _ = Scenario::missrate(Platform::R415, 50_000, 10_000, 30, 9)
            .run_pooled(&mut pool)
            .unwrap();
        let pooled = replayed.run_pooled(&mut pool).unwrap();
        assert_eq!(pooled, original, "pooled replay diverged for `{}`", sc.name);
        assert_eq!(pooled.events, original.events);
    }
}

#[test]
fn replayed_batch_is_thread_count_invariant() {
    // Run a batch of replay-parsed scenarios through the trial harness at
    // 1 and 4 threads: outcome vectors (snapshots included) must match.
    let scenarios: Vec<Scenario> = quick_trials()
        .iter()
        .flat_map(|sc| {
            (0..3u64).map(|k| {
                let mut v = Scenario::from_replay_string(&sc.to_replay_string()).unwrap();
                v.machine.seed = v.machine.seed.wrapping_add(k);
                v
            })
        })
        .collect();
    let run = |threads: usize| -> Vec<TrialOutcome> {
        run_trials_pooled(
            &HarnessConfig::with_threads(threads),
            scenarios.clone(),
            |pool, sc| {
                let out = sc.run_recorded(pool).unwrap();
                let events = out.events;
                (out, events)
            },
        )
        .results
    };
    let serial = run(1);
    let fanned = run(4);
    assert_eq!(serial, fanned);
    for out in &serial {
        assert_eq!(out.snapshot.trials, 1);
        assert_eq!(out.snapshot.events, out.events);
    }
}

#[test]
fn workload_variants_are_distinguished_by_the_codec() {
    let a = Workload::MissRate {
        period_ns: 1,
        slice_ns: 2,
        jobs: 3,
    };
    let b = Workload::FaultMix {
        period_ns: 1,
        slice_pct: 2,
        jobs: 3,
    };
    assert_ne!(a.encode(), b.encode());
}

/// Guard the constructor-capture path: recording a scenario from the live
/// sweep machinery and re-deriving its `MachineConfig` must agree with
/// building the config directly.
#[test]
fn node_config_rebuild_is_lossless() {
    let sc = Scenario::fault_mix(1.0, 30_000, 60, 150, 7);
    let cfg = sc.node_config();
    let direct = {
        let machine = MachineConfig::for_platform(Platform::Phi)
            .with_cpus(3)
            .with_seed(7);
        let plan = FaultPlan::noisy(machine.platform.freq(), 1.0);
        nautix_rt::Node::builder(machine)
            .fault_plan(plan)
            .degrade(DegradePolicy {
                miss_threshold: 2,
                ..DegradePolicy::enabled()
            })
            .into_config()
    };
    assert_eq!(cfg.machine, direct.machine);
    assert_eq!(cfg.sched, direct.sched);
    assert_eq!(cfg.laden, direct.laden);
    assert_eq!(cfg.calib_rounds, direct.calib_rounds);
    assert_eq!(cfg.max_threads, direct.max_threads);
    assert_eq!(cfg.steal_poll_ns, direct.steal_poll_ns);
    assert_eq!(cfg.phase_correction, direct.phase_correction);
    // Smi/Cost types are in the codec surface; exercise their encodes.
    let c = Cost::new(10, 3);
    assert_eq!(Cost::decode(&c.encode()).unwrap(), c);
    let s = SmiConfig::disabled();
    assert_eq!(SmiConfig::decode(&s.encode()).unwrap(), s);
}
