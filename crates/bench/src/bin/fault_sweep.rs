//! Fault sweep: deterministic injection + graceful degradation.
//!
//! Sweeps `FaultPlan::noisy` intensities over an admitted workload and
//! writes `results/fault_sweep.csv` plus `BENCH_faults.json`. Run with
//! `NAUTIX_ORACLES=1` (trace build) to have every node check the online
//! invariant oracles and attribute environment-induced misses to fault
//! lanes; `NAUTIX_FAULTS=<x>` appends an extra intensity to the grid.

use nautix_bench::{banner, f, fault_sweep, out_dir, write_csv, BenchReport, Scale};
use nautix_rt::HarnessConfig;

fn main() {
    let scale = Scale::from_args();
    let hc = HarnessConfig::from_env();
    banner("Fault sweep: injection lanes + degradation responses");
    println!(
        "scale: {scale:?}; {} worker threads; intensities {:?}\n",
        hc.threads,
        fault_sweep::intensities(&hc)
    );
    let (pts, stats) = fault_sweep::sweep_with_stats(&hc, scale, 77);

    write_csv(
        &out_dir().join("fault_sweep.csv"),
        &[
            "intensity",
            "period_us",
            "slice_pct",
            "jobs",
            "miss_rate",
            "kicks_dropped",
            "kicks_delayed",
            "timer_overshoots",
            "freq_dips",
            "spurious_irqs",
            "cpu_stalls",
            "faults_total",
            "sporadic_demotions",
            "periodic_widenings",
            "periodic_demotions",
        ],
        pts.iter().map(|p| {
            vec![
                f(p.intensity),
                p.period_us.to_string(),
                p.slice_pct.to_string(),
                p.jobs.to_string(),
                f(p.miss_rate),
                p.faults.kicks_dropped.to_string(),
                p.faults.kicks_delayed.to_string(),
                p.faults.timer_overshoots.to_string(),
                p.faults.freq_dips.to_string(),
                p.faults.spurious_irqs.to_string(),
                p.faults.cpu_stalls.to_string(),
                p.faults.total().to_string(),
                p.degrade.sporadic_demotions.to_string(),
                p.degrade.periodic_widenings.to_string(),
                p.degrade.periodic_demotions.to_string(),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fault_sweep.csv"));

    // Per-intensity rollup: how injection load translates into misses and
    // degradation responses.
    println!("\nintensity  points  miss_rate(mean)  faults  demotions  widenings");
    for &i in &fault_sweep::intensities(&hc) {
        let rows: Vec<_> = pts.iter().filter(|p| p.intensity == i).collect();
        if rows.is_empty() {
            continue;
        }
        let mean_miss = rows.iter().map(|p| p.miss_rate).sum::<f64>() / rows.len() as f64;
        let faults: u64 = rows.iter().map(|p| p.faults.total()).sum();
        let demotions: u64 = rows
            .iter()
            .map(|p| p.degrade.sporadic_demotions + p.degrade.periodic_demotions)
            .sum();
        let widenings: u64 = rows.iter().map(|p| p.degrade.periodic_widenings).sum();
        println!(
            "{:>9}  {:>6}  {:>15}  {:>6}  {:>9}  {:>9}",
            f(i),
            rows.len(),
            f(mean_miss),
            faults,
            demotions,
            widenings
        );
    }

    #[cfg(feature = "trace")]
    if hc.oracles {
        let (suites, o) = nautix_rt::oracle::global_stats();
        println!(
            "\noracles: CLEAN over {} node lifetimes — {} records consumed; \
             {} admitted-miss checks, {} environment-attributed",
            suites, o.records, o.miss_checks, o.environment_misses
        );
        for lane in nautix_trace::FaultLane::all() {
            if o.fault_records[lane.idx()] > 0 || o.env_miss_by_lane[lane.idx()] > 0 {
                println!(
                    "  fault lane {:>14}: {} injected, {} misses attributed",
                    lane.name(),
                    o.fault_records[lane.idx()],
                    o.env_miss_by_lane[lane.idx()],
                );
            }
        }
    }

    let mut report = BenchReport::new();
    report.add("fault_sweep", stats);
    let bench_path = std::path::Path::new("BENCH_faults.json");
    report.write(bench_path);
    println!("\nwrote {bench_path:?}");
}
