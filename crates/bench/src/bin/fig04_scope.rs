//! Figure 4: scope-style external verification of a periodic thread.

use nautix_bench::{banner, f, fig04, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4: external scope traces (τ=100µs σ=50µs, Phi)");
    let r = fig04::run(scale, 3);
    let row = |name: &str, a: &nautix_hw::scope::PinAnalysis| {
        println!(
            "{name}: pulses={} width_mean={} width_std={} period_mean={} period_std={} duty={}",
            a.pulses,
            f(a.high_widths.mean),
            f(a.high_widths.std_dev),
            f(a.periods.mean),
            f(a.periods.std_dev),
            f(a.duty_cycle)
        );
    };
    row("thread   ", &r.thread);
    row("scheduler", &r.scheduler);
    row("interrupt", &r.interrupt);
    println!(
        "thread trace sharpness: period jitter {} of period ({} cycles nominal)",
        f(r.thread.periods.std_dev / r.period_cycles as f64),
        r.period_cycles
    );
    write_csv(
        &out_dir().join("fig04_scope.csv"),
        &[
            "trace",
            "pulses",
            "width_mean",
            "width_std",
            "period_mean",
            "period_std",
            "duty",
        ],
        [
            ("thread", &r.thread),
            ("scheduler", &r.scheduler),
            ("interrupt", &r.interrupt),
        ]
        .iter()
        .map(|(n, a)| {
            vec![
                n.to_string(),
                a.pulses.to_string(),
                f(a.high_widths.mean),
                f(a.high_widths.std_dev),
                f(a.periods.mean),
                f(a.periods.std_dev),
                f(a.duty_cycle),
            ]
        }),
    );
    println!("wrote {:?}", out_dir().join("fig04_scope.csv"));
}
