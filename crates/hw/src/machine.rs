//! The shared-memory x64 node: CPUs, clocks, interrupts, and missing time.
//!
//! [`Machine`] is a deterministic discrete-event model of the paper's
//! testbeds. The kernel layers above drive it through a small "hardware
//! interface": read/write TSCs, program one-shot timers, set the processor
//! priority, send kick IPIs, start computations, and charge the cycle cost
//! of kernel paths. [`Machine::advance`] plays events back in timestamp
//! order; the kernel reacts to each one exactly as an interrupt handler
//! would.
//!
//! # Execution model
//!
//! Each CPU does one thing at a time:
//!
//! * an **operation** (`begin_op`) models the current thread computing for
//!   a known number of cycles; it is preemptible (`cancel_op` returns the
//!   remaining cycles);
//! * a **charge** models non-preemptible kernel path time (interrupt
//!   handling, scheduler pass, context switch) and advances the CPU's
//!   `busy_until` horizon; interrupt deliveries that land inside a busy
//!   window are deferred to its end, exactly like interrupts held off by
//!   a critical section;
//! * an **SMI** stalls *every* CPU: in-flight operations stretch, busy
//!   windows extend, deliveries defer — but TSCs and timer deadlines keep
//!   advancing, so software observes missing time (§3.6).

use crate::apic::{Apic, TimerMode, VEC_DEVICE_BASE, VEC_KICK, VEC_TIMER};
use crate::cost::{Cost, CostModel};
use crate::fault::{FaultPlan, FaultStats};
use crate::gpio::Gpio;
use crate::smi::{SmiConfig, SmiStats};
use crate::timer::TimerSlots;
use crate::topology::{Distance, TopoMap, Topology};
use crate::tsc::Tsc;
use nautix_des::{Cycles, DetRng, EventId, EventQueue, Freq, Nanos, QueueKind};
#[cfg(feature = "trace")]
use nautix_trace::{FaultLane, Record, TraceHandle};

/// Index of a hardware thread ("CPU" in the paper's terminology).
pub type CpuId = usize;

/// The two evaluation platforms of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Colfax KNL Ninja: Xeon Phi 7210, 64 cores x 4 hardware threads,
    /// 1.3 GHz.
    Phi,
    /// Dell R415: dual AMD Opteron 4122, 8 cores, 2.2 GHz.
    R415,
}

impl Platform {
    /// Hardware thread count of the stock machine.
    pub fn default_cpus(&self) -> usize {
        match self {
            Platform::Phi => 256,
            Platform::R415 => 8,
        }
    }

    /// Core clock.
    pub fn freq(&self) -> Freq {
        match self {
            Platform::Phi => Freq::phi(),
            Platform::R415 => Freq::r415(),
        }
    }

    /// Calibrated cost model.
    pub fn cost_model(&self) -> CostModel {
        match self {
            Platform::Phi => CostModel::phi(),
            Platform::R415 => CostModel::r415(),
        }
    }

    /// Default timer mode: classic one-shot APIC countdown with the
    /// platform's tick quantum (neither testbed used TSC-deadline mode in
    /// the paper's configuration).
    pub fn timer_mode(&self) -> TimerMode {
        match self {
            // ~20 ns APIC tick at 1.3 GHz.
            Platform::Phi => TimerMode::OneShot { tick_cycles: 26 },
            // ~10 ns APIC tick at 2.2 GHz.
            Platform::R415 => TimerMode::OneShot { tick_cycles: 22 },
        }
    }
}

/// Configuration for building a [`Machine`].
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Which testbed's frequency/cost calibration to use.
    pub platform: Platform,
    /// Number of hardware threads to model.
    pub n_cpus: usize,
    /// Timer hardware mode (override for the `abl_timer_mode` ablation).
    pub timer_mode: TimerMode,
    /// Whether TSCs can be written (§3.4).
    pub tsc_writable: bool,
    /// Maximum boot-time TSC phase skew, uniform per CPU. CPU 0 defines
    /// wall-clock and has zero offset.
    pub boot_skew_max: Cycles,
    /// SMI injection configuration.
    pub smi: SmiConfig,
    /// Fault-lane injection plan beyond SMIs (kick loss/delay, timer
    /// overshoot, frequency dips, spurious interrupts, per-CPU stalls).
    pub faults: FaultPlan,
    /// Future-event queue backend. Both produce byte-identical runs; the
    /// wheel is the fast default, the heap the differential reference.
    pub queue: QueueKind,
    /// Package → LLC topology shape. Flat (the default) makes every hop
    /// same-LLC and is byte-identical to the pre-topology model; tree
    /// shapes make kick-IPI latency and steal costs distance-dependent.
    pub topology: Topology,
    /// Seed for all modeled jitter.
    pub seed: u64,
}

impl MachineConfig {
    /// The paper's primary testbed: a 256-CPU Phi.
    pub fn phi() -> Self {
        Self::for_platform(Platform::Phi)
    }

    /// The secondary testbed: an 8-CPU R415.
    pub fn r415() -> Self {
        Self::for_platform(Platform::R415)
    }

    /// Defaults for a platform.
    pub fn for_platform(platform: Platform) -> Self {
        MachineConfig {
            platform,
            n_cpus: platform.default_cpus(),
            timer_mode: platform.timer_mode(),
            tsc_writable: true,
            // Firmware brings APs up one after another; phases land within
            // a few milliseconds of each other before calibration.
            boot_skew_max: platform.freq().us_to_cycles(1500),
            smi: SmiConfig::disabled(),
            faults: FaultPlan::disabled(),
            queue: QueueKind::from_env(),
            topology: Topology::from_env(),
            seed: 0xAA71,
        }
    }

    /// Override the CPU count.
    pub fn with_cpus(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.n_cpus = n;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable SMI injection.
    pub fn with_smi(mut self, smi: SmiConfig) -> Self {
        self.smi = smi;
        self
    }

    /// Override the timer mode.
    pub fn with_timer_mode(mut self, mode: TimerMode) -> Self {
        self.timer_mode = mode;
        self
    }

    /// Enable fault-lane injection.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Override the event-queue backend (the `NAUTIX_QUEUE` hatch picks
    /// the default; benches pin it explicitly for A/B comparisons).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Override the topology shape (the `NAUTIX_TOPOLOGY` hatch picks the
    /// default; benches pin it explicitly for flat-vs-tree A/B sweeps).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }
}

/// Events surfaced to the kernel layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineEvent {
    /// The one-shot timer fired on `cpu`.
    TimerInterrupt { cpu: CpuId },
    /// A kick (or other) IPI arrived on `cpu`.
    Ipi { cpu: CpuId, vector: u8 },
    /// An external device interrupt was delivered to `cpu`.
    DeviceInterrupt { cpu: CpuId, irq: u8 },
    /// The operation started with `begin_op` ran to completion.
    OpComplete { cpu: CpuId, token: u64 },
    /// A node-level wakeup scheduled with `schedule_wakeup`.
    Wakeup { token: u64 },
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Arrive {
        cpu: CpuId,
        vector: u8,
        irq: Option<u8>,
    },
    OpComplete {
        cpu: CpuId,
        seq: u64,
    },
    SmiEnter,
    /// Recurring fault lanes from the `FaultPlan`; the affected CPU is
    /// drawn when the event fires.
    FaultFreqDip,
    FaultSpuriousIrq,
    FaultCpuStall,
    Wakeup {
        token: u64,
        cpu: Option<CpuId>,
    },
}

/// One event drained by `pop_batch` into the machine's scratch buffer,
/// awaiting consumption. `dead` marks entries cancelled after the drain
/// (the batched analogue of removing a pending event from the queue).
#[derive(Debug, Clone, Copy)]
struct BatchEntry {
    time: Cycles,
    id: EventId,
    ev: Ev,
    dead: bool,
}

#[derive(Debug)]
struct InFlightOp {
    token: u64,
    seq: u64,
    start: Cycles,
    cycles: Cycles,
    stalled_add: Cycles,
    event: EventId,
}

#[derive(Debug)]
struct CpuState {
    tsc: Tsc,
    apic: Apic,
    busy_until: Cycles,
    /// Per-CPU stall horizon from single-CPU faults (stalls, dips); the
    /// machine-wide SMI stall lives in `Machine::stall_until`.
    stall_until: Cycles,
    op: Option<InFlightOp>,
}

/// The node model. See the module docs for the execution model.
pub struct Machine {
    cfg: MachineConfig,
    freq: Freq,
    cost: CostModel,
    topo: TopoMap,
    q: EventQueue<Ev>,
    /// Same-timestamp dispatch scratch: `advance` drains one whole instant
    /// here and consumes it across calls, so the queue sees one batched
    /// drain per timestamp instead of one pop per event. Allocation is
    /// retained across batches and resets.
    batch: Vec<BatchEntry>,
    batch_pos: usize,
    /// One pending one-shot deadline per CPU, kept out of the event queue so
    /// the scheduler's per-exit re-arm is an O(1) store (see [`TimerSlots`]).
    timers: TimerSlots,
    cpus: Vec<CpuState>,
    rng: DetRng,
    gpio: Gpio,
    op_seq: u64,
    stall_until: Cycles,
    smi_stats: SmiStats,
    fault_stats: FaultStats,
    ipis_sent: u64,
    /// IPIs sent per hop-distance class, indexed by [`Distance::index`]
    /// (same-LLC / same-package / cross-package). Flat topologies only
    /// ever touch slot 0.
    ipis_by_distance: [u64; 3],
    device_irqs: u64,
    #[cfg(feature = "trace")]
    trace: Option<TraceHandle>,
}

impl Machine {
    /// Build and "power on" a machine: TSCs get their boot skew, the SMI
    /// injector is armed, and the clock sits at zero.
    pub fn new(cfg: MachineConfig) -> Self {
        let mut rng = DetRng::seed_from(cfg.seed);
        let freq = cfg.platform.freq();
        let cost = cfg.platform.cost_model();
        let mut cpus = Vec::with_capacity(cfg.n_cpus);
        for i in 0..cfg.n_cpus {
            let offset = if i == 0 || cfg.boot_skew_max == 0 {
                0
            } else {
                rng.uniform(0, cfg.boot_skew_max) as i64
            };
            cpus.push(CpuState {
                tsc: Tsc::new(offset, cfg.tsc_writable),
                apic: Apic::new(cfg.timer_mode),
                busy_until: 0,
                stall_until: 0,
                op: None,
            });
        }
        let mut q = EventQueue::with_kind(cfg.queue);
        if let Some(gap) = cfg.smi.next_gap(&mut rng) {
            q.schedule(gap, Ev::SmiEnter);
        }
        Self::arm_fault_lanes(&cfg.faults, &mut rng, &mut q);
        let timers = TimerSlots::new(cpus.len());
        let topo = TopoMap::new(cfg.topology, cfg.n_cpus);
        Machine {
            cfg,
            freq,
            cost,
            topo,
            q,
            batch: Vec::new(),
            batch_pos: 0,
            timers,
            cpus,
            rng,
            gpio: Gpio::new(),
            op_seq: 0,
            stall_until: 0,
            smi_stats: SmiStats::default(),
            fault_stats: FaultStats::default(),
            ipis_sent: 0,
            ipis_by_distance: [0; 3],
            device_irqs: 0,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    /// Schedule the first arrival of each enabled recurring fault lane, in
    /// a fixed order. Disabled lanes draw nothing — the all-disabled plan
    /// leaves both the RNG stream and the event heap untouched. Called
    /// with identical state from [`Machine::new`] and [`Machine::reset`].
    fn arm_fault_lanes(faults: &FaultPlan, rng: &mut DetRng, q: &mut EventQueue<Ev>) {
        if let Some(gap) = faults.freq_dip.next_gap(rng) {
            q.schedule(gap, Ev::FaultFreqDip);
        }
        if let Some(gap) = faults.spurious_irq.next_gap(rng) {
            q.schedule(gap, Ev::FaultSpuriousIrq);
        }
        if let Some(gap) = faults.cpu_stall.next_gap(rng) {
            q.schedule(gap, Ev::FaultCpuStall);
        }
    }

    /// "Power-cycle" the machine in place for `cfg`, reusing the event
    /// queue's and CPU vector's allocations. The RNG is reseeded and every
    /// draw of [`Machine::new`] is replayed in the same order (per-CPU boot
    /// skews, then the first SMI gap), so a reset machine is byte-for-byte
    /// equivalent to a freshly constructed one — the foundation of pooled
    /// trial reuse.
    pub fn reset(&mut self, cfg: MachineConfig) {
        let mut rng = DetRng::seed_from(cfg.seed);
        self.freq = cfg.platform.freq();
        self.cost = cfg.platform.cost_model();
        self.cpus.clear();
        for i in 0..cfg.n_cpus {
            let offset = if i == 0 || cfg.boot_skew_max == 0 {
                0
            } else {
                rng.uniform(0, cfg.boot_skew_max) as i64
            };
            self.cpus.push(CpuState {
                tsc: Tsc::new(offset, cfg.tsc_writable),
                apic: Apic::new(cfg.timer_mode),
                busy_until: 0,
                stall_until: 0,
                op: None,
            });
        }
        self.q.reset(cfg.queue);
        self.batch.clear();
        self.batch_pos = 0;
        if let Some(gap) = cfg.smi.next_gap(&mut rng) {
            self.q.schedule(gap, Ev::SmiEnter);
        }
        Self::arm_fault_lanes(&cfg.faults, &mut rng, &mut self.q);
        self.timers.reset(self.cpus.len());
        self.topo = TopoMap::new(cfg.topology, cfg.n_cpus);
        self.rng = rng;
        self.gpio = Gpio::new();
        self.op_seq = 0;
        self.stall_until = 0;
        self.smi_stats = SmiStats::default();
        self.fault_stats = FaultStats::default();
        self.ipis_sent = 0;
        self.ipis_by_distance = [0; 3];
        self.device_irqs = 0;
        self.cfg = cfg;
        #[cfg(feature = "trace")]
        {
            self.trace = None;
        }
    }

    /// Install (or remove) the trace sink fed by this machine's timer and
    /// kick paths. Tracing never perturbs the simulation: no RNG draws, no
    /// event-queue traffic.
    #[cfg(feature = "trace")]
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// True machine time. Kernel code must treat this as unobservable and
    /// go through [`Machine::read_tsc`]; harnesses use it as the external
    /// ground-truth clock (the "oscilloscope view").
    pub fn now(&self) -> Cycles {
        self.q.now()
    }

    /// Core frequency.
    pub fn freq(&self) -> Freq {
        self.freq
    }

    /// The calibrated cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The resolved topology map (shape × CPU count).
    pub fn topology(&self) -> TopoMap {
        self.topo
    }

    /// Number of CPUs.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Clocks
    // ------------------------------------------------------------------

    /// `rdtsc` on `cpu`.
    pub fn read_tsc(&self, cpu: CpuId) -> Cycles {
        self.cpus[cpu].tsc.read(self.q.now())
    }

    /// Write `cpu`'s TSC so it reads `value` now; the write lands with the
    /// platform's write-granularity slop. Returns false if unsupported.
    pub fn write_tsc(&mut self, cpu: CpuId, value: Cycles) -> bool {
        let slop = self.cost.tsc_write_granularity.draw(&mut self.rng);
        let now = self.q.now();
        self.cpus[cpu].tsc.write(now, value + slop)
    }

    /// Adjust `cpu`'s TSC by a delta; same slop as a write.
    pub fn adjust_tsc(&mut self, cpu: CpuId, delta: i64) -> bool {
        let slop = self.cost.tsc_write_granularity.draw(&mut self.rng) as i64;
        self.cpus[cpu].tsc.adjust(delta + slop)
    }

    /// Ground-truth TSC phase of `cpu` (experiment reporting only).
    pub fn tsc_true_offset(&self, cpu: CpuId) -> i64 {
        self.cpus[cpu].tsc.true_offset()
    }

    // ------------------------------------------------------------------
    // Timers, IPIs, interrupts
    // ------------------------------------------------------------------

    /// Program `cpu`'s one-shot timer to fire after `delay_ns`. Re-arms
    /// (cancels) any previous programming. Returns the actual hardware
    /// delay in cycles after quantization.
    pub fn set_timer_ns(&mut self, cpu: CpuId, delay_ns: Nanos) -> Cycles {
        let delay = self.freq.ns_to_cycles(delay_ns);
        self.set_timer_cycles(cpu, delay)
    }

    /// Program `cpu`'s one-shot timer in raw cycles. Re-arming overwrites
    /// the slot in place — no event-queue traffic, no stale state.
    pub fn set_timer_cycles(&mut self, cpu: CpuId, delay: Cycles) -> Cycles {
        let now = self.q.now();
        let actual = self.cpus[cpu].apic.mode().quantize(delay);
        // An injected overshoot fires the one-shot late without telling
        // software: the returned delay stays the quantized request.
        let mut overshoot = 0;
        if FaultPlan::chance(self.cfg.faults.timer_overshoot_ppm, &mut self.rng) {
            overshoot = self.cfg.faults.timer_overshoot_extra.draw(&mut self.rng);
            self.fault_stats.timer_overshoots += 1;
            self.fault_stats.timer_overshoot_cycles += overshoot;
            #[cfg(feature = "trace")]
            if let Some(t) = &self.trace {
                t.emit(Record::Fault {
                    cpu: cpu as u32,
                    lane: FaultLane::TimerOvershoot,
                    now_cycles: now,
                    magnitude_cycles: overshoot,
                });
            }
        }
        self.timers.arm(cpu, now + actual + overshoot);
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::TimerArm {
                cpu: cpu as u32,
                now_cycles: now,
                fire_at_cycles: now + actual + overshoot,
            });
        }
        actual
    }

    /// Disarm `cpu`'s one-shot timer.
    pub fn cancel_timer(&mut self, cpu: CpuId) {
        self.timers.disarm(cpu);
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::TimerCancel {
                cpu: cpu as u32,
                now_cycles: self.q.now(),
            });
        }
    }

    /// The programmed timer deadline (true time), if armed.
    pub fn timer_deadline(&self, cpu: CpuId) -> Option<Cycles> {
        self.timers.deadline(cpu)
    }

    /// Total one-shot programmings performed, all CPUs (diagnostics).
    pub fn timer_programmings(&self) -> u64 {
        self.timers.arms()
    }

    /// Set `cpu`'s processor priority (TPR). Newly unblocked pending
    /// vectors are re-delivered.
    pub fn set_tpr(&mut self, cpu: CpuId, tpr: u8) {
        let released = self.cpus[cpu].apic.set_tpr(tpr);
        let now = self.q.now();
        for v in released {
            let irq = if (VEC_DEVICE_BASE..VEC_TIMER).contains(&v) {
                Some(v - VEC_DEVICE_BASE)
            } else {
                None
            };
            self.q.schedule(
                now,
                Ev::Arrive {
                    cpu,
                    vector: v,
                    irq,
                },
            );
        }
    }

    /// Current TPR of `cpu`.
    pub fn tpr(&self, cpu: CpuId) -> u8 {
        self.cpus[cpu].apic.tpr()
    }

    /// Send an IPI from `from` to `to`. The send itself costs the sender a
    /// shared-line access; delivery happens after the modeled latency,
    /// which depends on the hop distance between the two CPUs.
    pub fn send_ipi(&mut self, from: CpuId, to: CpuId, vector: u8) {
        debug_assert!(from < self.cpus.len() && to < self.cpus.len());
        self.ipis_sent += 1;
        let dist = self.topo.distance(from, to);
        self.ipis_by_distance[dist.index()] += 1;
        let latency = self.cost.ipi_latency_for(dist).draw(&mut self.rng);
        self.q.schedule_in(
            latency,
            Ev::Arrive {
                cpu: to,
                vector,
                irq: None,
            },
        );
    }

    /// Send the scheduler kick IPI (§3.4). Subject to the fault plan's
    /// kick lanes: the send can be silently dropped in the interconnect
    /// or delivered late, both invisible to the sender.
    pub fn send_kick(&mut self, from: CpuId, to: CpuId) {
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::Kick {
                from: from as u32,
                to: to as u32,
                now_cycles: self.q.now(),
            });
        }
        if FaultPlan::chance(self.cfg.faults.kick_drop_ppm, &mut self.rng) {
            self.fault_stats.kicks_dropped += 1;
            #[cfg(feature = "trace")]
            if let Some(t) = &self.trace {
                t.emit(Record::Fault {
                    cpu: to as u32,
                    lane: FaultLane::KickDrop,
                    now_cycles: self.q.now(),
                    magnitude_cycles: 0,
                });
            }
            return;
        }
        let mut extra = 0;
        if FaultPlan::chance(self.cfg.faults.kick_delay_ppm, &mut self.rng) {
            extra = self.cfg.faults.kick_delay_extra.draw(&mut self.rng);
            self.fault_stats.kicks_delayed += 1;
            self.fault_stats.kick_delay_cycles += extra;
            #[cfg(feature = "trace")]
            if let Some(t) = &self.trace {
                t.emit(Record::Fault {
                    cpu: to as u32,
                    lane: FaultLane::KickDelay,
                    now_cycles: self.q.now(),
                    magnitude_cycles: extra,
                });
            }
        }
        debug_assert!(from < self.cpus.len() && to < self.cpus.len());
        self.ipis_sent += 1;
        let dist = self.topo.distance(from, to);
        self.ipis_by_distance[dist.index()] += 1;
        let latency = self.cost.ipi_latency_for(dist).draw(&mut self.rng) + extra;
        self.q.schedule_in(
            latency,
            Ev::Arrive {
                cpu: to,
                vector: VEC_KICK,
                irq: None,
            },
        );
    }

    /// Raise external device interrupt `irq` (0..=0x3F), steered to `cpu`.
    pub fn raise_irq(&mut self, cpu: CpuId, irq: u8) {
        assert!(irq < 0x40, "irq {irq} out of the device vector window");
        self.device_irqs += 1;
        let latency = self.cost.irq_raise_latency.draw(&mut self.rng);
        self.q.schedule_in(
            latency,
            Ev::Arrive {
                cpu,
                vector: VEC_DEVICE_BASE + irq,
                irq: Some(irq),
            },
        );
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Begin an operation of `cycles` on `cpu` for the current thread. The
    /// operation starts when the CPU's busy window ends and completes as a
    /// [`MachineEvent::OpComplete`] carrying `token`.
    ///
    /// Panics if an operation is already in flight on `cpu` — the kernel
    /// must preempt (`cancel_op`) before starting another.
    pub fn begin_op(&mut self, cpu: CpuId, cycles: Cycles, token: u64) {
        assert!(
            self.cpus[cpu].op.is_none(),
            "cpu {cpu} already has an operation in flight"
        );
        let now = self.q.now();
        let start = now
            .max(self.cpus[cpu].busy_until)
            .max(self.stall_until)
            .max(self.cpus[cpu].stall_until);
        self.op_seq += 1;
        let seq = self.op_seq;
        let completion = start + cycles;
        let ev = self.q.schedule(completion, Ev::OpComplete { cpu, seq });
        self.cpus[cpu].op = Some(InFlightOp {
            token,
            seq,
            start,
            cycles,
            stalled_add: 0,
            event: ev,
        });
    }

    /// Preempt the in-flight operation on `cpu`, if any, returning its
    /// token and remaining cycles.
    pub fn cancel_op(&mut self, cpu: CpuId) -> Option<(u64, Cycles)> {
        let now = self.q.now();
        let op = self.cpus[cpu].op.take()?;
        self.cancel_ev(op.event);
        let executed = now
            .saturating_sub(op.start)
            .saturating_sub(op.stalled_add)
            .min(op.cycles);
        Some((op.token, op.cycles - executed))
    }

    /// Whether `cpu` has an operation in flight.
    pub fn op_in_flight(&self, cpu: CpuId) -> bool {
        self.cpus[cpu].op.is_some()
    }

    /// Charge non-preemptible kernel path time on `cpu`: draws the cost and
    /// extends the CPU's busy window. Returns the drawn duration.
    ///
    /// Must not be called while an operation is in flight on `cpu` (the
    /// kernel preempts first); this is asserted.
    pub fn charge(&mut self, cpu: CpuId, cost: Cost) -> Cycles {
        debug_assert!(
            self.cpus[cpu].op.is_none(),
            "charging kernel time on cpu {cpu} while a thread op is in flight"
        );
        let d = cost.draw(&mut self.rng);
        self.charge_raw(cpu, d);
        d
    }

    /// Charge an exact, pre-drawn duration.
    pub fn charge_raw(&mut self, cpu: CpuId, cycles: Cycles) {
        let now = self.q.now();
        let stall = self.stall_until;
        let c = &mut self.cpus[cpu];
        c.busy_until = c.busy_until.max(now).max(stall).max(c.stall_until) + cycles;
    }

    /// End of `cpu`'s current busy window.
    pub fn busy_until(&self, cpu: CpuId) -> Cycles {
        self.cpus[cpu].busy_until
    }

    /// Draw a cost without charging it anywhere (for modeled delays the
    /// caller applies itself).
    pub fn draw(&mut self, cost: Cost) -> Cycles {
        cost.draw(&mut self.rng)
    }

    /// Deterministic uniform draw in `[lo, hi]` from the machine stream.
    pub fn rand_uniform(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.uniform(lo, hi)
    }

    /// Schedule a node-level wakeup at absolute true time `at`. If `cpu` is
    /// given, delivery defers like an interrupt (busy window + SMI);
    /// otherwise only SMIs defer it.
    pub fn schedule_wakeup(&mut self, at: Cycles, token: u64, cpu: Option<CpuId>) -> EventId {
        let at = at.max(self.q.now());
        self.q.schedule(at, Ev::Wakeup { token, cpu })
    }

    /// Cancel a wakeup scheduled earlier.
    pub fn cancel_wakeup(&mut self, ev: EventId) {
        self.cancel_ev(ev);
    }

    /// The GPIO port.
    pub fn gpio(&mut self) -> &mut Gpio {
        &mut self.gpio
    }

    /// Write GPIO pins at the current instant (helper that avoids borrow
    /// juggling in scheduler hooks).
    pub fn gpio_write(&mut self, mask: u8, value: u8) {
        let now = self.q.now();
        self.gpio.write(now, mask, value);
    }

    /// Write GPIO pins stamped at an explicit instant. Kernel paths run as
    /// instantaneous host code whose cycle cost extends the CPU's busy
    /// window; an `outb` placed mid-path therefore lands at a point inside
    /// that window, which the caller knows and supplies here.
    pub fn gpio_write_at(&mut self, at: Cycles, mask: u8, value: u8) {
        self.gpio.write(at, mask, value);
    }

    /// SMI ground truth so far.
    pub fn smi_stats(&self) -> SmiStats {
        self.smi_stats
    }

    /// Injected-fault ground truth so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// IPIs sent so far.
    pub fn ipis_sent(&self) -> u64 {
        self.ipis_sent
    }

    /// IPIs sent so far, broken down by hop distance — indexed by
    /// [`Distance::index`] (same-LLC, same-package, cross-package).
    pub fn ipis_by_distance(&self) -> [u64; 3] {
        self.ipis_by_distance
    }

    /// Fraction of IPIs so far that crossed a package boundary.
    pub fn cross_package_ipi_fraction(&self) -> f64 {
        if self.ipis_sent == 0 {
            0.0
        } else {
            self.ipis_by_distance[Distance::CrossPackage.index()] as f64 / self.ipis_sent as f64
        }
    }

    /// Device interrupts raised so far.
    pub fn device_irqs(&self) -> u64 {
        self.device_irqs
    }

    /// Events processed so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.q.events_processed()
    }

    /// Events currently pending (diagnostics): the global queue plus any
    /// live entries drained into the batch scratch but not yet consumed.
    /// Timer programmings live in the per-CPU slots and never appear here.
    pub fn event_backlog(&self) -> usize {
        self.q.backlog()
            + self.batch[self.batch_pos..]
                .iter()
                .filter(|e| !e.dead)
                .count()
    }

    // ------------------------------------------------------------------
    // The event pump
    // ------------------------------------------------------------------

    /// Advance to the next kernel-visible event, or `None` when both event
    /// sources drain (machine is quiescent).
    ///
    /// Two sources merge here in timestamp order: the global future-event
    /// queue and the per-CPU timer slots. A timer due no later than the
    /// queue head fires first — it models hardware raising the interrupt
    /// line, which precedes any same-instant software-visible event.
    ///
    /// Queue traffic is batched: when the scratch buffer is exhausted, one
    /// `pop_batch` drains every event at the next instant and subsequent
    /// calls consume the buffer. The observable stream — event order,
    /// trace records, counters — is identical to popping one event at a
    /// time: same-instant events already in the buffer precede events
    /// scheduled at that instant during their consumption (higher sequence
    /// numbers), exactly as the heap ordered them, and a timer armed
    /// mid-batch for the current instant still fires before the remaining
    /// entries (the unbatched merge fired on `deadline <= head`, equality
    /// included).
    pub fn advance(&mut self) -> Option<(Cycles, MachineEvent)> {
        loop {
            if self.batch_pos >= self.batch.len() {
                // Refill: fire every timer due no later than the queue
                // head (each firing may schedule an earlier head), then
                // drain the next instant wholesale.
                self.batch.clear();
                self.batch_pos = 0;
                while let Some((cpu, deadline)) = self.timers.due_before(self.q.peek_time()) {
                    self.fire_timer(cpu, deadline);
                }
                let batch = &mut self.batch;
                let n = self.q.pop_batch(|time, id, ev| {
                    batch.push(BatchEntry {
                        time,
                        id,
                        ev,
                        dead: false,
                    })
                });
                if n == 0 {
                    return None;
                }
                // Processed-event accounting happens per entry at consume
                // time below — the same observation points as unbatched
                // popping, so end-of-run totals and mid-run reads agree.
                self.q.forget_events(n as u64);
            }
            let t = self.batch[self.batch_pos].time;
            while let Some((cpu, deadline)) = self.timers.due_before(Some(t)) {
                self.fire_timer(cpu, deadline);
            }
            let i = self.batch_pos;
            self.batch_pos += 1;
            if self.batch[i].dead {
                continue;
            }
            self.q.note_external_events(1);
            let ev = self.batch[i].ev;
            match ev {
                Ev::SmiEnter => {
                    self.handle_smi_enter(t);
                }
                Ev::FaultFreqDip => {
                    self.handle_freq_dip(t);
                }
                Ev::FaultSpuriousIrq => {
                    self.handle_spurious_irq(t);
                }
                Ev::FaultCpuStall => {
                    self.handle_cpu_stall(t);
                }
                Ev::Arrive { cpu, vector, irq } => {
                    if let Some(deliver_at) = self.delivery_deferral(cpu, t) {
                        self.q.schedule(deliver_at, Ev::Arrive { cpu, vector, irq });
                        continue;
                    }
                    if self.cpus[cpu].apic.blocks(vector) {
                        self.cpus[cpu].apic.set_pending(vector);
                        continue;
                    }
                    let event = match (vector, irq) {
                        (VEC_TIMER, _) => MachineEvent::TimerInterrupt { cpu },
                        (_, Some(irq)) => MachineEvent::DeviceInterrupt { cpu, irq },
                        (v, None) => MachineEvent::Ipi { cpu, vector: v },
                    };
                    return Some((t, event));
                }
                Ev::OpComplete { cpu, seq } => {
                    let matches = self.cpus[cpu]
                        .op
                        .as_ref()
                        .map(|o| o.seq == seq)
                        .unwrap_or(false);
                    if matches {
                        let op = self.cpus[cpu].op.take().unwrap();
                        return Some((
                            t,
                            MachineEvent::OpComplete {
                                cpu,
                                token: op.token,
                            },
                        ));
                    }
                }
                Ev::Wakeup { token, cpu } => {
                    if let Some(c) = cpu {
                        if let Some(deliver_at) = self.delivery_deferral(c, t) {
                            self.q.schedule(deliver_at, Ev::Wakeup { token, cpu });
                            continue;
                        }
                    } else if t < self.stall_until {
                        self.q.schedule(self.stall_until, Ev::Wakeup { token, cpu });
                        continue;
                    }
                    return Some((t, MachineEvent::Wakeup { token }));
                }
            }
        }
    }

    /// Fire `cpu`'s one-shot at `deadline`: disarm, advance the clock,
    /// emit the trace record, and schedule the interrupt arrival after the
    /// modeled raise latency.
    fn fire_timer(&mut self, cpu: CpuId, deadline: Cycles) {
        self.timers.disarm(cpu);
        self.q.advance_to(deadline);
        self.q.note_external_events(1);
        #[cfg(feature = "trace")]
        if let Some(t) = &self.trace {
            t.emit(Record::TimerFire {
                cpu: cpu as u32,
                at_cycles: deadline,
            });
        }
        let latency = self.cost.irq_raise_latency.draw(&mut self.rng);
        self.q.schedule(
            deadline + latency,
            Ev::Arrive {
                cpu,
                vector: VEC_TIMER,
                irq: None,
            },
        );
    }

    /// Cancel a pending event wherever it currently lives: still in the
    /// queue, or already drained into the batch scratch (where cancelling
    /// means marking the entry dead so consumption skips it — the batched
    /// analogue of removing it from the queue before it pops).
    fn cancel_ev(&mut self, id: EventId) -> bool {
        if self.q.cancel(id) {
            return true;
        }
        for e in &mut self.batch[self.batch_pos..] {
            if !e.dead && e.id == id {
                e.dead = true;
                return true;
            }
        }
        false
    }

    /// If delivery on `cpu` at time `t` must wait, returns when to retry.
    fn delivery_deferral(&self, cpu: CpuId, t: Cycles) -> Option<Cycles> {
        let horizon = self.cpus[cpu]
            .busy_until
            .max(self.stall_until)
            .max(self.cpus[cpu].stall_until);
        if t < horizon {
            Some(horizon)
        } else {
            None
        }
    }

    fn handle_smi_enter(&mut self, t: Cycles) {
        let d = self.cfg.smi.draw_duration(&mut self.rng).max(1);
        self.stall_until = t + d;
        self.smi_stats.count += 1;
        self.smi_stats.stalled_cycles += d;
        // Freeze all CPUs: stretch in-flight ops, extend busy windows.
        for cpu in 0..self.cpus.len() {
            if let Some(op) = self.cpus[cpu].op.take() {
                self.cancel_ev(op.event);
                let completion = op.start + op.cycles + op.stalled_add + d;
                let ev = self
                    .q
                    .schedule(completion, Ev::OpComplete { cpu, seq: op.seq });
                self.cpus[cpu].op = Some(InFlightOp {
                    stalled_add: op.stalled_add + d,
                    event: ev,
                    ..op
                });
            }
            let c = &mut self.cpus[cpu];
            if c.busy_until > t {
                c.busy_until += d;
            }
        }
        // Arm the next SMI.
        if let Some(gap) = self.cfg.smi.next_gap(&mut self.rng) {
            self.q.schedule(self.stall_until + gap, Ev::SmiEnter);
        }
    }

    /// Freeze a single CPU for `d` cycles at time `t`: the per-CPU
    /// analogue of the SMI freeze — the in-flight operation stretches,
    /// the busy window extends, deliveries defer — while every other CPU
    /// keeps running.
    fn stall_one_cpu(&mut self, cpu: CpuId, t: Cycles, d: Cycles) {
        let horizon = (t + d).max(self.cpus[cpu].stall_until);
        self.cpus[cpu].stall_until = horizon;
        if let Some(op) = self.cpus[cpu].op.take() {
            self.cancel_ev(op.event);
            let completion = op.start + op.cycles + op.stalled_add + d;
            let ev = self
                .q
                .schedule(completion, Ev::OpComplete { cpu, seq: op.seq });
            self.cpus[cpu].op = Some(InFlightOp {
                stalled_add: op.stalled_add + d,
                event: ev,
                ..op
            });
        }
        let c = &mut self.cpus[cpu];
        if c.busy_until > t {
            c.busy_until += d;
        }
    }

    /// A transient frequency dip on one uniformly drawn CPU. A dip of
    /// wall-length `w` at a core running at `(100 - loss)%` speed costs
    /// the core `w * loss / 100` cycles of compute, which this models as
    /// a stall of exactly that aggregate length — equivalent lost work,
    /// one mechanism.
    fn handle_freq_dip(&mut self, t: Cycles) {
        let cpu = self.rng.uniform(0, (self.cpus.len() - 1) as u64) as CpuId;
        let window = self.cfg.faults.freq_dip_duration.draw(&mut self.rng).max(1);
        let lost = (window * self.cfg.faults.freq_dip_loss_pct as u64 / 100).max(1);
        self.fault_stats.freq_dips += 1;
        self.fault_stats.freq_dip_lost_cycles += lost;
        #[cfg(feature = "trace")]
        if let Some(trace) = self.trace.clone() {
            trace.emit(Record::Fault {
                cpu: cpu as u32,
                lane: FaultLane::FreqDip,
                now_cycles: t,
                magnitude_cycles: lost,
            });
        }
        self.stall_one_cpu(cpu, t, lost);
        if let Some(gap) = self.cfg.faults.freq_dip.next_gap(&mut self.rng) {
            self.q.schedule(t + window + gap, Ev::FaultFreqDip);
        }
    }

    /// A spurious device interrupt on one uniformly drawn CPU, delivered
    /// through the normal device-vector path: the kernel above sees a
    /// device interrupt nobody asked for and must shrug it off.
    fn handle_spurious_irq(&mut self, t: Cycles) {
        let cpu = self.rng.uniform(0, (self.cpus.len() - 1) as u64) as CpuId;
        let irq = self.cfg.faults.spurious_irq_line & 0x3F;
        self.fault_stats.spurious_irqs += 1;
        #[cfg(feature = "trace")]
        if let Some(trace) = self.trace.clone() {
            trace.emit(Record::Fault {
                cpu: cpu as u32,
                lane: FaultLane::SpuriousIrq,
                now_cycles: t,
                magnitude_cycles: 0,
            });
        }
        self.device_irqs += 1;
        let latency = self.cost.irq_raise_latency.draw(&mut self.rng);
        self.q.schedule_in(
            latency,
            Ev::Arrive {
                cpu,
                vector: VEC_DEVICE_BASE + irq,
                irq: Some(irq),
            },
        );
        if let Some(gap) = self.cfg.faults.spurious_irq.next_gap(&mut self.rng) {
            self.q.schedule(t + gap, Ev::FaultSpuriousIrq);
        }
    }

    /// A bounded stall of one uniformly drawn CPU (firmware or
    /// memory-controller hiccup); unlike an SMI, the other CPUs run on.
    fn handle_cpu_stall(&mut self, t: Cycles) {
        let cpu = self.rng.uniform(0, (self.cpus.len() - 1) as u64) as CpuId;
        let d = self
            .cfg
            .faults
            .cpu_stall_duration
            .draw(&mut self.rng)
            .max(1);
        self.fault_stats.cpu_stalls += 1;
        self.fault_stats.cpu_stall_cycles += d;
        #[cfg(feature = "trace")]
        if let Some(trace) = self.trace.clone() {
            trace.emit(Record::Fault {
                cpu: cpu as u32,
                lane: FaultLane::CpuStall,
                now_cycles: t,
                magnitude_cycles: d,
            });
        }
        self.stall_one_cpu(cpu, t, d);
        if let Some(gap) = self.cfg.faults.cpu_stall.next_gap(&mut self.rng) {
            self.q.schedule(t + d + gap, Ev::FaultCpuStall);
        }
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.q.now())
            .field("n_cpus", &self.cpus.len())
            .field("platform", &self.cfg.platform)
            .finish()
    }
}
