//! Property tests of the machine model: execution accounting, timer
//! quantization, and whole-machine determinism under random stimuli.

use nautix_hw::{Machine, MachineConfig, MachineEvent, TimerMode};
use proptest::prelude::*;

proptest! {
    /// Preempting an operation at an arbitrary point conserves cycles:
    /// executed + remaining == scheduled, and re-running the remainder
    /// completes exactly on time.
    #[test]
    fn op_preemption_conserves_cycles(
        total in 1_000u64..1_000_000,
        cut_frac in 1u64..99,
    ) {
        let cfg = MachineConfig::phi().with_cpus(1).with_seed(9);
        let mut m = Machine::new(cfg);
        let cut = total * cut_frac / 100;
        m.set_timer_cycles(0, cut.max(1));
        m.begin_op(0, total, 7);
        let (t, ev) = m.advance().unwrap();
        match ev {
            MachineEvent::TimerInterrupt { cpu: 0 } => {
                let (token, remaining) = m.cancel_op(0).expect("op in flight");
                prop_assert_eq!(token, 7);
                // The timer may fire with quantization + raise latency, so
                // the executed share is t (the delivery instant).
                prop_assert_eq!(remaining, total.saturating_sub(t));
                // Resume the remainder: it completes after exactly that.
                let resume_at = m.now();
                m.begin_op(0, remaining, 7);
                let (t2, ev2) = m.advance().unwrap();
                prop_assert_eq!(ev2, MachineEvent::OpComplete { cpu: 0, token: 7 });
                prop_assert_eq!(t2 - resume_at, remaining);
            }
            MachineEvent::OpComplete { cpu: 0, token: 7 } => {
                // The op finished before the (quantized) timer: legal when
                // the cut lands within a tick of the total.
                prop_assert_eq!(t, total);
            }
            other => prop_assert!(false, "unexpected event {other:?}"),
        }
    }

    /// One-shot quantization never fires late and never more than one tick
    /// early (for multi-tick delays).
    #[test]
    fn quantization_is_conservative(tick in 1u64..10_000, delay in 1u64..10_000_000) {
        let mode = TimerMode::OneShot { tick_cycles: tick };
        let actual = mode.quantize(delay);
        prop_assert_eq!(actual % tick, 0);
        if delay >= tick {
            prop_assert!(actual <= delay, "fired late: {actual} > {delay}");
            prop_assert!(delay - actual < tick, "more than one tick early");
        } else {
            prop_assert_eq!(actual, tick, "sub-tick delays take one tick");
        }
    }

    /// The machine is a deterministic function of its seed under a
    /// randomized stimulus schedule (timers + IPIs + ops).
    #[test]
    fn machine_trace_is_seed_deterministic(
        seed in 0u64..1_000,
        stimuli in prop::collection::vec((0usize..4, 1u64..100_000), 1..24),
    ) {
        let run = || {
            let mut m = Machine::new(MachineConfig::phi().with_cpus(4).with_seed(seed));
            for &(cpu, delay) in &stimuli {
                m.set_timer_cycles(cpu, delay);
                m.send_kick(cpu, (cpu + 1) % 4);
            }
            let mut log = Vec::new();
            while let Some((t, ev)) = m.advance() {
                log.push((t, format!("{ev:?}")));
                if log.len() > 200 {
                    break;
                }
            }
            log
        };
        prop_assert_eq!(run(), run());
    }

    /// TSC write granularity: after an adjust, the residual slop stays
    /// within the modeled worst case.
    #[test]
    fn tsc_adjust_slop_is_bounded(seed in 0u64..2_000, cpu_idx in 1usize..8) {
        let mut m = Machine::new(MachineConfig::phi().with_cpus(8).with_seed(seed));
        let before = m.tsc_true_offset(cpu_idx);
        prop_assert!(m.adjust_tsc(cpu_idx, -before));
        let resid = m.tsc_true_offset(cpu_idx);
        let worst = m.cost_model().tsc_write_granularity.worst() as i64;
        prop_assert!((0..=worst).contains(&resid), "residual {resid}");
    }
}
