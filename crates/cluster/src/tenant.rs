//! Tenants and the deterministic synthetic tenant stream.
//!
//! A *tenant* is one real-time gang asking the cluster for a reservation:
//! `gang` threads, each holding the same periodic constraints (the
//! placement layer applies the usual per-slot phase correction on admit),
//! resident for `hold_ns` of virtual time before departing. The stream
//! that generates them is a Poisson arrival process with heavy-tailed gang
//! sizes and a heavy-tailed constraint-class mix, drawn entirely from
//! [`DetRng`] forks of one seed — so a stream is a pure function of that
//! seed, byte-identical at any harness thread count, and *independent of
//! placement decisions* (rejected tenants consume exactly the same draws
//! as admitted ones). That last property is what makes placement policies
//! differential-testable: every policy sees the identical request
//! sequence.
//!
//! The class palette is deliberately small and skewed (Zipf-ish weights
//! over harmonic periods and a few utilization steps): real multi-tenant
//! fleets see a handful of popular shapes plus a long tail, and the
//! repeated per-CPU task-set signatures are what give the admission
//! engine's `SimCache` its churn hit rate — the headline number of the
//! cluster benchmark.

use nautix_des::{DetRng, Nanos};
use nautix_kernel::Constraints;

/// Harmonic period palette, ns. Harmonic periods keep every per-CPU
/// hyperperiod at most [`PERIODS_NS`]'s maximum, so even memo *misses*
/// simulate a bounded window.
pub const PERIODS_NS: [Nanos; 5] = [1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000];

/// Per-member utilization palette, ppm of one CPU.
pub const UTILS_PPM: [u64; 5] = [20_000, 50_000, 100_000, 200_000, 400_000];

/// One typed placement request: the unit the cluster admits or rejects.
///
/// Built in the `ConstraintsBuilder` style — start from
/// [`TenantRequest::gang`], chain the setters:
///
/// ```
/// use nautix_cluster::TenantRequest;
/// use nautix_kernel::Constraints;
///
/// let req = TenantRequest::gang(4)
///     .constraints(Constraints::periodic(2_000_000, 200_000).build())
///     .hold_ns(50_000_000)
///     .id(7);
/// assert_eq!(req.util_ppm(), 4 * 100_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRequest {
    /// Stream-unique tenant id (arrival order).
    pub id: u64,
    /// Gang size: members run on distinct CPUs of one shard.
    pub gang: usize,
    /// Per-member constraints before phase correction.
    pub constraints: Constraints,
    /// Virtual residency time before the tenant departs.
    pub hold_ns: Nanos,
}

impl TenantRequest {
    /// A request for a gang of `size` threads; defaults to a tiny periodic
    /// reservation, zero hold, id 0.
    pub fn gang(size: usize) -> Self {
        assert!(size >= 1, "a tenant gang has at least one member");
        TenantRequest {
            id: 0,
            gang: size,
            constraints: Constraints::periodic(PERIODS_NS[0], PERIODS_NS[0] / 50).build(),
            hold_ns: 0,
        }
    }

    /// The per-member constraints every gang member should hold.
    pub fn constraints(mut self, constraints: Constraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Virtual residency before departure.
    pub fn hold_ns(mut self, hold_ns: Nanos) -> Self {
        self.hold_ns = hold_ns;
        self
    }

    /// The stream id (arrival order).
    pub fn id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Whole-gang utilization demand, ppm (members × per-member ppm).
    pub fn util_ppm(&self) -> u64 {
        self.gang as u64 * self.constraints.utilization_ppm()
    }
}

/// The deterministic tenant stream: Poisson arrivals, heavy-tailed gang
/// sizes and constraint classes, exponential residency.
#[derive(Debug, Clone)]
pub struct TenantStream {
    arrivals: DetRng,
    shapes: DetRng,
    holds: DetRng,
    mean_gap_ns: f64,
    mean_hold_ns: f64,
    max_gang: usize,
    now_ns: Nanos,
    next_id: u64,
}

impl TenantStream {
    /// A stream determined entirely by `seed`; gang sizes are clamped to
    /// `max_gang` (a gang never outgrows one shard's CPUs).
    pub fn new(seed: u64, mean_gap_ns: Nanos, mean_hold_ns: Nanos, max_gang: usize) -> Self {
        assert!(max_gang >= 1);
        let mut root = DetRng::seed_from(seed);
        TenantStream {
            arrivals: root.fork(1),
            shapes: root.fork(2),
            holds: root.fork(3),
            mean_gap_ns: mean_gap_ns as f64,
            mean_hold_ns: mean_hold_ns as f64,
            max_gang,
            now_ns: 0,
            next_id: 0,
        }
    }

    /// Zipf-ish index into a palette of `n` entries: weight ∝ 1/(i+1).
    fn skewed_index(rng: &mut DetRng, n: usize) -> usize {
        let total: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
        let mut u = rng.unit() * total;
        for i in 0..n {
            u -= 1.0 / (i + 1) as f64;
            if u < 0.0 {
                return i;
            }
        }
        n - 1
    }

    /// Pareto-tailed gang size in `[1, max_gang]` (α = 1.5): most gangs
    /// are singletons or pairs, a heavy tail fills whole shards.
    fn gang_size(&mut self) -> usize {
        let u = self.shapes.unit();
        let raw = (1.0 / (1.0 - u).max(f64::MIN_POSITIVE)).powf(1.0 / 1.5);
        (raw as usize).clamp(1, self.max_gang)
    }

    /// The next arrival: `(virtual arrival time, request)`. The stream is
    /// infinite; callers bound it by tenant count.
    pub fn next_request(&mut self) -> (Nanos, TenantRequest) {
        self.now_ns += self.arrivals.exponential(self.mean_gap_ns);
        let gang = self.gang_size();
        let period = PERIODS_NS[Self::skewed_index(&mut self.shapes, PERIODS_NS.len())];
        let util = UTILS_PPM[Self::skewed_index(&mut self.shapes, UTILS_PPM.len())];
        let slice = period * util / 1_000_000;
        let hold = self.holds.exponential(self.mean_hold_ns);
        let req = TenantRequest::gang(gang)
            .constraints(Constraints::periodic(period, slice).build())
            .hold_ns(hold)
            .id(self.next_id);
        self.next_id += 1;
        (self.now_ns, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_a_pure_function_of_its_seed() {
        let mut a = TenantStream::new(42, 1_000_000, 100_000_000, 8);
        let mut b = TenantStream::new(42, 1_000_000, 100_000_000, 8);
        for _ in 0..1_000 {
            assert_eq!(a.next_request(), b.next_request());
        }
        let mut c = TenantStream::new(43, 1_000_000, 100_000_000, 8);
        let diverges = (0..1_000).any(|_| a.next_request() != c.next_request());
        assert!(diverges, "different seeds must give different streams");
    }

    #[test]
    fn stream_shapes_are_sane_and_heavy_tailed() {
        let mut s = TenantStream::new(7, 1_000_000, 100_000_000, 8);
        let mut last_t = 0;
        let mut sizes = [0usize; 9];
        for i in 0..5_000 {
            let (t, req) = s.next_request();
            assert!(t > last_t, "virtual time strictly advances");
            last_t = t;
            assert_eq!(req.id, i);
            assert!((1..=8).contains(&req.gang));
            let Constraints::Periodic { period, .. } = req.constraints else {
                panic!("tenant constraints are periodic");
            };
            assert!(PERIODS_NS.contains(&period));
            assert!(req.hold_ns >= 1);
            sizes[req.gang] += 1;
        }
        assert!(sizes[1] > sizes[8], "singletons dominate full-shard gangs");
        assert!(sizes[8] > 0, "the tail still fills whole shards");
    }

    #[test]
    fn skew_prefers_small_indices() {
        let mut rng = DetRng::seed_from(5);
        let mut counts = [0u32; 5];
        for _ in 0..10_000 {
            counts[TenantStream::skewed_index(&mut rng, 5)] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "{counts:?}");
    }
}
