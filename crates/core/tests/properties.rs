//! Property-based tests of the scheduler's core invariants: admission
//! soundness, ledger conservation, phase-correction alignment, EDF
//! simulation consistency, and calibration bounds.

use nautix_kernel::{task_set_signature, AdmissionError, Constraints};
use nautix_rt::admission::simulate_edf_feasible;
use nautix_rt::{
    compile_cyclic, AdmissionEngine, AdmissionPolicy, CpuLoad, CyclicTask, SchedConfig, SimCache,
    PPM,
};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn arb_periodic() -> impl Strategy<Value = Constraints> {
    // Periods 10 µs .. 10 ms (multiples of the 100 ns granularity),
    // slices 5..90% of the period.
    (100u64..100_000, 5u64..90).prop_map(|(p100, pct)| {
        let period = p100 * 100;
        let slice = (period * pct / 100).max(500);
        Constraints::periodic(period, slice).build()
    })
}

proptest! {
    /// The EDF-bound ledger never admits past its budget, and the admitted
    /// utilization it reports is exactly the sum of the admitted tasks'.
    #[test]
    fn ledger_conserves_utilization(cs in prop::collection::vec(arb_periodic(), 1..20)) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        let mut admitted: Vec<Constraints> = Vec::new();
        for c in &cs {
            if load.admit(&cfg, c).is_ok() {
                admitted.push(*c);
            }
        }
        let expect: u64 = admitted.iter().map(|c| c.utilization_ppm()).sum();
        prop_assert_eq!(load.periodic_util_ppm(), expect);
        prop_assert!(load.periodic_util_ppm() <= cfg.periodic_budget_ppm());
        // Releasing everything drains the ledger completely.
        for c in &admitted {
            load.release(c);
        }
        prop_assert_eq!(load.periodic_util_ppm(), 0);
        prop_assert_eq!(load.periodic_count(), 0);
    }

    /// A rejected admission leaves the ledger exactly as it was.
    #[test]
    fn rejection_is_side_effect_free(
        cs in prop::collection::vec(arb_periodic(), 1..12),
        greedy_pct in 85u64..99,
    ) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        for c in &cs {
            let _ = load.admit(&cfg, c);
        }
        let before_util = load.periodic_util_ppm();
        let before_count = load.periodic_count();
        // An oversized request that must fail.
        let hog = Constraints::periodic(1_000_000, greedy_pct * 10_000).build();
        if load.admit(&cfg, &hog).is_err() {
            prop_assert_eq!(load.periodic_util_ppm(), before_util);
            prop_assert_eq!(load.periodic_count(), before_count);
        } else {
            // It fit; release to restore.
            load.release(&hog);
            prop_assert_eq!(load.periodic_util_ppm(), before_util);
        }
    }

    /// Any set the EDF bound admits at <=100% is feasible in the
    /// zero-overhead EDF simulation (Liu & Layland optimality), and adding
    /// overhead can only ever make a feasible set infeasible, not the
    /// reverse.
    #[test]
    fn edf_bound_agrees_with_simulation(cs in prop::collection::vec(arb_periodic(), 1..6)) {
        let util: u64 = cs.iter().map(|c| c.utilization_ppm()).sum();
        let set: Vec<(u64, u64)> = cs
            .iter()
            .map(|c| match *c {
                Constraints::Periodic { period, slice, .. } => (period, slice),
                _ => unreachable!(),
            })
            .collect();
        let window = 50_000_000; // cap the hyperperiod for test speed
        if util <= PPM {
            prop_assert!(
                simulate_edf_feasible(&set, 0, window),
                "EDF-optimal: any set within 100% utilization is schedulable"
            );
        }
        if !simulate_edf_feasible(&set, 0, window) {
            prop_assert!(
                !simulate_edf_feasible(&set, 5_000, window),
                "overhead can never rescue an infeasible set"
            );
        }
    }

    /// Phase correction aligns all first arrivals to the same instant,
    /// regardless of release order, group size, or measured delta.
    #[test]
    fn phase_correction_aligns_arrivals(
        n in 2usize..256,
        delta in 0u64..10_000,
        phase in 0u64..1_000_000,
    ) {
        let arrivals: Vec<u64> = (0..n)
            .map(|i| {
                let departure = i as u64 * delta;
                departure + nautix_groups::corrected_phase(phase, i, n, delta)
            })
            .collect();
        prop_assert!(arrivals.windows(2).all(|w| w[0] == w[1]));
    }

    /// Calibration keeps residuals within the paper's envelope for any
    /// seed, and wall clocks agree across CPUs afterwards.
    #[test]
    fn calibration_envelope_holds_for_any_seed(seed in 0u64..5_000) {
        let mut m = nautix_hw::Machine::new(
            nautix_hw::MachineConfig::phi().with_cpus(16).with_seed(seed),
        );
        let sync = nautix_rt::calibrate(&mut m, 16);
        let s = sync.residual_summary();
        prop_assert!(s.max <= 1_200, "residual {} beyond envelope (seed {})", s.max, seed);
    }

    /// Sporadic admissions and releases keep the reservation accounting
    /// balanced.
    #[test]
    fn sporadic_reservation_balances(
        bursts in prop::collection::vec((500u64..50_000, 100_000u64..1_000_000), 1..12),
    ) {
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        let mut admitted = Vec::new();
        for &(size, deadline) in &bursts {
            let c = Constraints::sporadic(size, deadline).build();
            if load.admit(&cfg, &c).is_ok() {
                admitted.push(c);
            }
            prop_assert!(load.sporadic_util_ppm() <= cfg.sporadic_reserve_ppm);
        }
        for c in &admitted {
            load.release(c);
        }
        prop_assert_eq!(load.sporadic_util_ppm(), 0);
    }
}

/// Admit-then-release probe: returns the verdict without perturbing the
/// ledger (rejection is side-effect-free; release undoes an admission).
fn probe(load: &mut CpuLoad, cfg: &SchedConfig, c: &Constraints) -> bool {
    if load.admit(cfg, c).is_ok() {
        load.release(c);
        true
    } else {
        false
    }
}

proptest! {
    /// Admission is monotone in requested utilization: against the same
    /// ledger state, if the larger of two slices admits at a given
    /// period, the smaller one must admit too (equivalently, rejection
    /// is monotone upward).
    #[test]
    fn admission_is_monotone_in_slice(
        preload in prop::collection::vec(arb_periodic(), 0..10),
        p100 in 100u64..100_000,
        pct_a in 5u64..90,
        pct_b in 5u64..90,
    ) {
        let period = p100 * 100;
        let (lo, hi) = if pct_a <= pct_b { (pct_a, pct_b) } else { (pct_b, pct_a) };
        let small = Constraints::periodic(period, (period * lo / 100).max(500)).build();
        let big = Constraints::periodic(period, (period * hi / 100).max(500)).build();
        let cfg = SchedConfig::default();
        let mut load = CpuLoad::new();
        for c in &preload {
            let _ = load.admit(&cfg, c);
        }
        let big_ok = probe(&mut load, &cfg, &big);
        let small_ok = probe(&mut load, &cfg, &small);
        prop_assert!(
            !big_ok || small_ok,
            "slice {} admitted but shorter slice {} rejected at period {}",
            big.utilization_ppm(), small.utilization_ppm(), period
        );
    }

    /// The closed-form utilization test and the hyperperiod EDF
    /// simulation (zero overhead) return the *same verdict sequence* on
    /// any request stream: below 100% total utilization EDF is optimal,
    /// so the 79% periodic budget is the only binding constraint for
    /// both policies.
    #[test]
    fn utilization_test_agrees_with_hyperperiod_simulation(
        cs in prop::collection::vec(arb_periodic(), 1..8),
    ) {
        let bound_cfg = SchedConfig::default();
        let sim_cfg = SchedConfig {
            policy: AdmissionPolicy::HyperperiodSim {
                overhead_ns: 0,
                window_cap_ns: 20_000_000,
            },
            ..SchedConfig::default()
        };
        let mut bound = CpuLoad::new();
        let mut sim = CpuLoad::new();
        for c in &cs {
            let vb = bound.admit(&bound_cfg, c).is_ok();
            let vs = sim.admit(&sim_cfg, c).is_ok();
            prop_assert_eq!(
                vb, vs,
                "policies diverge on {:?} ppm (ledger at {} ppm)",
                c.utilization_ppm(), bound.periodic_util_ppm()
            );
        }
        prop_assert_eq!(bound.periodic_util_ppm(), sim.periodic_util_ppm());
    }
}

/// A ledger running the memoized simulation path: incremental engine,
/// hyperperiod-sim policy, cache installed.
fn cached_sim_load(cfg: &SchedConfig) -> (SchedConfig, CpuLoad) {
    let cfg = SchedConfig {
        policy: AdmissionPolicy::HyperperiodSim {
            overhead_ns: 0,
            window_cap_ns: 20_000_000,
        },
        engine: AdmissionEngine::Incremental,
        ..*cfg
    };
    let mut load = CpuLoad::new();
    load.install_sim_cache(Rc::new(RefCell::new(SimCache::new())));
    (cfg, load)
}

proptest! {
    /// The closed-form/simulation agreement holds on the *cached* path
    /// too: the same request stream replayed through a warm memo (drain,
    /// then re-admit) keeps returning the closed-form verdicts, and the
    /// replay is served entirely from the memo.
    #[test]
    fn utilization_test_agrees_with_memoized_simulation(
        cs in prop::collection::vec(arb_periodic(), 1..8),
    ) {
        let bound_cfg = SchedConfig::default();
        let (sim_cfg, mut sim) = cached_sim_load(&bound_cfg);
        let mut bound = CpuLoad::new();
        let mut verdicts = Vec::new();
        for c in &cs {
            let vb = bound.admit(&bound_cfg, c).is_ok();
            let vs = sim.admit(&sim_cfg, c).is_ok();
            prop_assert_eq!(vb, vs, "cached sim diverged from bound on {:?}", c);
            verdicts.push(vs);
        }
        let cold = sim.admission_stats();
        // Drain and replay: identical verdicts, all from the memo.
        let admitted: Vec<_> = cs.iter().zip(&verdicts).filter(|(_, &v)| v).collect();
        for (c, _) in admitted.iter().rev() {
            sim.release(c);
        }
        for (i, c) in cs.iter().enumerate() {
            prop_assert_eq!(sim.admit(&sim_cfg, c).is_ok(), verdicts[i]);
        }
        let warm = sim.admission_stats();
        prop_assert_eq!(
            warm.sim_misses, cold.sim_misses,
            "replaying an identical request stream must not simulate again"
        );
        prop_assert_eq!(bound.periodic_util_ppm(), sim.periodic_util_ppm());
        prop_assert_eq!(sim.periodic_util_ppm(), sim.periodic_util_ppm_rescan());
    }

    /// Distinct canonical task sets never share a memo entry: their
    /// signatures differ, and even a cache primed with one set's verdict
    /// misses on the other (the full canonical set is part of the key, so
    /// a signature collision alone could never cross-serve a verdict).
    #[test]
    fn distinct_canonical_sets_never_share_memo_entries(
        a in prop::collection::vec(arb_periodic(), 1..6),
        b in prop::collection::vec(arb_periodic(), 1..6),
    ) {
        let canon = |cs: &[Constraints]| {
            let mut v: Vec<(u64, u64)> = cs
                .iter()
                .map(|c| match *c {
                    Constraints::Periodic { period, slice, .. } => (period, slice),
                    _ => unreachable!(),
                })
                .collect();
            v.sort_unstable();
            v
        };
        let (ka, kb) = (canon(&a), canon(&b));
        let (overhead, window) = (1_000u64, 20_000_000u64);
        let (sa, sb) = (
            task_set_signature(&ka, overhead, window),
            task_set_signature(&kb, overhead, window),
        );
        let mut cache = SimCache::new();
        cache.insert(sa, ka.clone(), overhead, window, true);
        if ka == kb {
            prop_assert_eq!(sa, sb, "equal canonical sets must share a signature");
            prop_assert_eq!(cache.lookup(sb, &kb, overhead, window), Some(true));
        } else {
            prop_assert!(sa != sb, "distinct sets {:?} / {:?} collided", ka, kb);
            prop_assert_eq!(cache.lookup(sb, &kb, overhead, window), None);
        }
        // The same set under a different overhead model is a different
        // verdict: never served across models.
        prop_assert_eq!(cache.lookup(sa, &ka, overhead + 1, window), None);
        prop_assert_eq!(cache.lookup(sa, &ka, overhead, window / 2), None);
    }
}

/// The §3.2 exact reservation boundaries hold unchanged on the memoized
/// simulation path: the budget gate still rejects one step past each
/// line, and serving the repeat admission from the memo cannot loosen it.
#[test]
fn reservation_edges_hold_on_the_cached_path() {
    let base = SchedConfig::default();
    let (cfg, mut load) = cached_sim_load(&base);
    assert_eq!(cfg.periodic_budget_ppm(), 790_000);

    // Exactly the 79% budget admits; with it held even the minimum legal
    // slice is refused; draining and re-admitting (a memo hit) behaves
    // identically.
    for pass in 0..2 {
        let full = Constraints::periodic(1_000_000, 790_000).build();
        assert!(load.admit(&cfg, &full).is_ok(), "pass {pass}");
        assert_eq!(
            load.admit(&cfg, &Constraints::periodic(1_000_000, 500).build()),
            Err(AdmissionError::UtilizationExceeded),
            "pass {pass}"
        );
        load.release(&full);
        assert_eq!(load.periodic_util_ppm(), 0);
    }
    let s = load.admission_stats();
    assert!(s.sim_hits > 0, "second pass must be served from the memo");

    // One ppm past the budget is refused by the gate before any
    // simulation runs — rejected sets never enter the memo.
    let probes = s.sim_hits + s.sim_misses;
    assert_eq!(
        load.admit(&cfg, &Constraints::periodic(1_000_000, 790_001).build()),
        Err(AdmissionError::UtilizationExceeded)
    );
    let after = load.admission_stats();
    assert_eq!(after.sim_hits + after.sim_misses, probes);

    // The sporadic and aperiodic reserves are untouched by the policy:
    // exactly 10% admits, one ppm more is refused, aperiodic never fails.
    assert!(load
        .admit(&cfg, &Constraints::sporadic(100_000, 1_000_000).build())
        .is_ok());
    assert_eq!(
        load.admit(&cfg, &Constraints::sporadic(500, 1_000_000).build()),
        Err(AdmissionError::SporadicReservationExceeded)
    );
    assert!(load.admit(&cfg, &Constraints::default_aperiodic()).is_ok());
}

/// The §3.2 default reservations — 99% utilization limit, 10% sporadic,
/// 10% aperiodic — leave exactly 79% for periodic admission, and the
/// ledger honors each boundary exactly (admit at the line, reject one
/// step past it).
#[test]
fn reservation_defaults_hold_at_exact_boundaries() {
    let cfg = SchedConfig::default();
    assert_eq!(cfg.util_limit_ppm, 990_000);
    assert_eq!(cfg.sporadic_reserve_ppm, 100_000);
    assert_eq!(cfg.aperiodic_reserve_ppm, 100_000);
    assert_eq!(cfg.periodic_budget_ppm(), 790_000);

    // Periodic: exactly the 79% budget admits...
    let mut load = CpuLoad::new();
    assert!(load
        .admit(&cfg, &Constraints::periodic(1_000_000, 790_000).build())
        .is_ok());
    // ...and with it held, even the minimum legal slice is refused.
    assert_eq!(
        load.admit(&cfg, &Constraints::periodic(1_000_000, 500).build()),
        Err(AdmissionError::UtilizationExceeded)
    );
    // One ppm past the budget on a fresh ledger is refused outright.
    let mut fresh = CpuLoad::new();
    assert_eq!(
        fresh.admit(&cfg, &Constraints::periodic(1_000_000, 790_001).build()),
        Err(AdmissionError::UtilizationExceeded)
    );

    // Sporadic: exactly the 10% reserve admits; one ppm more is refused,
    // whether in a single burst or on top of a full reserve.
    let mut load = CpuLoad::new();
    assert!(load
        .admit(&cfg, &Constraints::sporadic(100_000, 1_000_000).build())
        .is_ok());
    assert_eq!(load.sporadic_util_ppm(), cfg.sporadic_reserve_ppm);
    assert_eq!(
        load.admit(&cfg, &Constraints::sporadic(500, 1_000_000).build()),
        Err(AdmissionError::SporadicReservationExceeded)
    );
    let mut fresh = CpuLoad::new();
    assert_eq!(
        fresh.admit(&cfg, &Constraints::sporadic(100_001, 1_000_000).build()),
        Err(AdmissionError::SporadicReservationExceeded)
    );

    // Aperiodic admission cannot fail (§3.2), even with every other
    // reservation saturated.
    assert!(load.admit(&cfg, &Constraints::default_aperiodic()).is_ok());

    // The throughput shape folds both reserves back into the periodic
    // budget: the full 99% admits, one ppm more does not.
    let tp = SchedConfig::throughput();
    assert_eq!(tp.periodic_budget_ppm(), 990_000);
    let mut load = CpuLoad::new();
    assert!(load
        .admit(&tp, &Constraints::periodic(1_000_000, 990_000).build())
        .is_ok());
    let mut fresh = CpuLoad::new();
    assert_eq!(
        fresh.admit(&tp, &Constraints::periodic(1_000_000, 990_001).build()),
        Err(AdmissionError::UtilizationExceeded)
    );
}

fn arb_cyclic_set() -> impl Strategy<Value = Vec<CyclicTask>> {
    // Periods drawn from a harmonic-friendly menu keep hyperperiods small.
    let menu = prop::sample::select(vec![
        50_000u64, 100_000, 200_000, 250_000, 400_000, 500_000, 1_000_000,
    ]);
    prop::collection::vec((menu, 2u64..40), 1..5).prop_map(|v| {
        v.into_iter()
            .map(|(period, pct)| CyclicTask {
                period,
                wcet: (period * pct / 100).max(1_000),
            })
            .collect()
    })
}

proptest! {
    /// Whatever table the cyclic compiler emits must pass its own
    /// verifier: every instance placed fully inside its window, frames
    /// never overfull.
    #[test]
    fn cyclic_tables_always_verify(set in arb_cyclic_set()) {
        if let Ok(s) = compile_cyclic(&set) {
            prop_assert!(s.verify().is_ok(), "emitted table failed verification");
            prop_assert_eq!(s.hyperperiod % s.frame, 0);
            prop_assert!(s.peak_frame_load() <= s.frame);
        }
    }

    /// The compiler never accepts an over-utilized set and never rejects
    /// a single-task set with utilization <= 100% whose period admits a
    /// valid frame (the task's own period always does).
    #[test]
    fn cyclic_compiler_boundaries(period in 10_000u64..1_000_000, pct in 1u64..101) {
        let wcet = (period * pct / 100).max(1);
        let res = compile_cyclic(&[CyclicTask { period, wcet }]);
        if pct <= 100 {
            prop_assert!(res.is_ok(), "single feasible task must compile: {res:?}");
        } else {
            prop_assert!(res.is_err());
        }
    }
}
