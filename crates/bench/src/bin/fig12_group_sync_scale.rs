//! Figure 12: cross-CPU scheduler synchronization at several group sizes.

use nautix_bench::{banner, f, groupsync, out_dir, write_csv, Scale};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 12: group dispatch spread by size (cycles, phase correction off)");
    let series = groupsync::fig12(scale, 21);
    let mut rows = Vec::new();
    for s in &series {
        println!(
            "n={:3}: mean={} std={} min={} max={} (bias correctable; variation is not)",
            s.n,
            f(s.summary.mean),
            f(s.summary.std_dev),
            s.summary.min,
            s.summary.max
        );
        for (i, &v) in s.spreads.iter().enumerate() {
            rows.push(vec![s.n as u64, i as u64, v]);
        }
    }
    write_csv(
        &out_dir().join("fig12_group_sync_scale.csv"),
        &["n", "invocation", "spread_cycles"],
        rows,
    );
    println!("wrote {:?}", out_dir().join("fig12_group_sync_scale.csv"));
}
