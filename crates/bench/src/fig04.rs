//! Figure 4: external (scope) verification of hard real-time scheduling.
//!
//! The paper drives a parallel port from the scheduler and watches it on a
//! DSO: the *test thread* trace (top) stays sharp while the *scheduler*
//! (middle) and *interrupt handler* (bottom) traces show fuzz. Our scope is
//! the GPIO capture on true machine time; "sharpness" becomes period
//! jitter statistics per pin.

use crate::common::Scale;
use nautix_hw::scope::PinAnalysis;
use nautix_hw::MachineConfig;
use nautix_kernel::{Action, Constraints, FnProgram, SysCall};
use nautix_rt::{Node, NodeConfig};

/// The three analyzed traces.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// Pin 0: the test thread's active/inactive trace.
    pub thread: PinAnalysis,
    /// Pin 1: the local scheduler pass.
    pub scheduler: PinAnalysis,
    /// Pin 2: the timer interrupt handler.
    pub interrupt: PinAnalysis,
    /// The programmed period in cycles, for reference.
    pub period_cycles: u64,
}

/// Run the scope experiment: a periodic thread with τ = 100 µs,
/// σ = 50 µs, as in the figure.
pub fn run(scale: Scale, seed: u64) -> Fig04 {
    let mut cfg = NodeConfig::phi();
    cfg.machine = MachineConfig::phi().with_cpus(2).with_seed(seed);
    let mut node = Node::new(cfg);
    let prog = FnProgram::new(|_cx, n| {
        if n == 0 {
            Action::Call(SysCall::ChangeConstraints(
                Constraints::periodic(100_000, 50_000).build(),
            ))
        } else {
            Action::Compute(13_000)
        }
    });
    let tid = node.spawn_on(1, "test", Box::new(prog)).unwrap();
    node.gpio_watch(tid);
    let horizon_ns = match scale {
        Scale::Quick => 20_000_000,  // 200 periods
        Scale::Paper => 100_000_000, // 1000 periods
    };
    node.run_for_ns(horizon_ns);
    let freq = node.freq();
    // Drop the admission transient (the thread's brief aperiodic life)
    // from the analyzed window, like triggering the scope after steady
    // state is reached.
    let settle = freq.ns_to_cycles(2_000_000);
    let trace: Vec<_> = node
        .machine
        .gpio()
        .take_trace()
        .into_iter()
        .filter(|s| s.time > settle)
        .collect();
    Fig04 {
        thread: nautix_hw::scope::analyze(&trace, 0),
        scheduler: nautix_hw::scope::analyze(&trace, 1),
        interrupt: nautix_hw::scope::analyze(&trace, 2),
        period_cycles: freq.ns_to_cycles(100_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_trace_is_sharp_and_duty_cycle_slightly_over_half() {
        let r = run(Scale::Quick, 3);
        assert!(r.thread.pulses > 150, "pulses={}", r.thread.pulses);
        // Period locked to 100 us (130_000 cycles at 1.3 GHz).
        assert!(
            (r.thread.periods.mean - r.period_cycles as f64).abs() < 500.0,
            "thread period mean {}",
            r.thread.periods.mean
        );
        // "The scheduler keeps the test thread trace sharp": jitter well
        // under 1% of the period.
        assert!(
            r.thread.periods.std_dev < 0.01 * r.period_cycles as f64,
            "thread period jitter {}",
            r.thread.periods.std_dev
        );
        // "Its active time includes the scheduler time, which is why the
        // duty cycle is slightly higher than 50%."
        assert!(
            (0.50..0.60).contains(&r.thread.duty_cycle),
            "duty cycle {}",
            r.thread.duty_cycle
        );
    }

    #[test]
    fn scheduler_and_interrupt_traces_show_fuzz() {
        let r = run(Scale::Quick, 3);
        // The handler/scheduler pulse widths vary (the "fuzz"), unlike the
        // thread trace.
        assert!(r.interrupt.high_widths.std_dev > 0.0);
        assert!(r.scheduler.high_widths.std_dev > 0.0);
        // Scheduler pass sits inside the interrupt pulse: narrower.
        assert!(r.scheduler.high_widths.mean < r.interrupt.high_widths.mean);
    }
}
